"""End-to-end smoke test: a real cluster surviving a real fault plan.

``python -m repro.runtime.demo`` boots a 3-node asyncio cluster (one OS
process per replica), drives the airline workload through the client
API while a ``FaultPlan`` replays against it — a network partition at
the socket layer, then a node SIGKILLed and respawned empty — waits for
anti-entropy to re-converge the survivors and the recovered node, and
then checks the *recorded* history: per-node conditions (1)–(4) via
execution extraction, plus the offline oracle suite (convergence,
mutual consistency, transitivity, trace discipline).

Exit status 0 means the paper's claims held on real processes
exchanging real messages; anything else is a failure a CI deadline will
surface.  ``--bench PATH`` additionally writes sustained throughput and
convergence-after-kill latency for the perf baseline.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from typing import List, Optional

from ..apps.airline.state import AirlineState
from ..chaos.faults import Crash, FaultPlan, Partition
from ..chaos.offline import RecordedRun, check_recorded_run
from ..shard.history import extract_execution
from ..sim.rng import SeededStreams
from .client import ClusterClient, NodeUnreachable
from .history import load_history
from .loadgen import LoadGenerator
from .supervisor import ClusterSupervisor, make_spec

#: the default demo plan: a clean partition, then a kill + recovery.
def demo_plan() -> FaultPlan:
    return FaultPlan((
        Partition(start=8.0, end=20.0, groups=((0,), (1, 2))),
        Crash(node=2, at=24.0, recover_at=36.0),
    ))


async def wait_converged(
    client: ClusterClient, timeout_plan: float
) -> Optional[float]:
    """Poll until every node reports the same txid set; returns the
    plan-time of convergence, or None on timeout."""
    clock = client.clock
    deadline = clock.now + timeout_plan
    while clock.now < deadline:
        try:
            if await client.converged():
                return clock.now
        except NodeUnreachable:
            pass
        await asyncio.sleep(clock.to_wall(1.0))
    return None


async def run_demo(args) -> int:
    history_dir = args.history or tempfile.mkdtemp(prefix="repro-runtime-")
    plan = demo_plan() if args.faults else None
    spec = make_spec(
        n_nodes=args.nodes,
        seed=args.seed,
        scale=args.scale,
        history_dir=history_dir,
        plan=plan,
    )
    supervisor = ClusterSupervisor(spec)
    client = ClusterClient(spec)
    streams = SeededStreams(args.seed)
    generator = LoadGenerator(
        client, streams.stream("loadgen"), capacity=args.capacity
    )
    print(f"booting {args.nodes}-node cluster on ports {spec.ports} "
          f"(scale={spec.scale}, history={history_dir})")
    await supervisor.start()
    try:
        replay = asyncio.ensure_future(supervisor.replay_plan())
        load = await generator.run(args.ops, rate=args.rate)
        await replay
        print(f"workload: {load.submitted} submitted, "
              f"{load.rejected} rejected, "
              f"{load.ops_per_sec:.1f} ops/sec sustained")

        recover_at = max(
            (f.recover_at for f in (plan.faults if plan else ())
             if isinstance(f, Crash)),
            default=supervisor.clock.now,
        )
        converged_at = await wait_converged(
            client, timeout_plan=args.converge_window
        )
        if converged_at is None:
            print("FAIL: cluster did not converge in time")
            return 1
        kill_latency = max(0.0, converged_at - recover_at)
        print(f"converged at plan-time {converged_at:.1f} "
              f"({kill_latency:.1f} after the killed node recovered)")

        for node_id in spec.node_ids:
            await client.dump(node_id)
    finally:
        client.close()
        await supervisor.stop()

    events, logs = load_history(history_dir)
    failures = 0
    for node_id in sorted(logs):
        try:
            execution = extract_execution(
                AirlineState(), logs[node_id], verify=True
            )
            execution.validate()
            print(f"node {node_id}: conditions (1)-(4) hold over "
                  f"{len(execution)} recorded transactions")
        except Exception as exc:
            failures += 1
            print(f"node {node_id}: FAIL conditions check: {exc}")

    run = RecordedRun(AirlineState(), logs, events)
    violations, _ = check_recorded_run(
        run, plan=plan, capacity=args.capacity
    )
    for violation in violations:
        failures += 1
        print(f"FAIL [{violation.oracle}] {violation.description}")
    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all checks passed: convergence + conditions (1)-(4) + "
          "offline oracles on the recorded history")

    if args.bench:
        bench = {
            "experiment": "runtime-smoke",
            "nodes": args.nodes,
            "ops": load.submitted,
            "rejected": load.rejected,
            "ops_per_sec": round(load.ops_per_sec, 2),
            "convergence_after_kill_plan_units": round(kill_latency, 2),
            "convergence_after_kill_wall_secs": round(
                kill_latency * spec.scale, 3
            ),
            "scale": spec.scale,
            "seed": args.seed,
        }
        with open(args.bench, "w", encoding="utf-8") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench written to {args.bench}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.demo",
        description="boot a live cluster, fault it, check the history",
    )
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--ops", type=int, default=60)
    parser.add_argument("--rate", type=float, default=40.0,
                        help="ops per wall second (spread over the plan)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="wall seconds per plan unit")
    parser.add_argument("--capacity", type=int, default=2)
    parser.add_argument("--converge-window", type=float, default=120.0,
                        help="plan units to wait for convergence")
    parser.add_argument("--deadline", type=float, default=120.0,
                        help="hard wall-clock cap on the whole demo")
    parser.add_argument("--history", default=None,
                        help="history directory (default: fresh tempdir)")
    parser.add_argument("--bench", default=None,
                        help="write BENCH_runtime.json here")
    parser.add_argument("--no-faults", dest="faults",
                        action="store_false", default=True)
    args = parser.parse_args(argv)

    async def bounded() -> int:
        return await asyncio.wait_for(run_demo(args), timeout=args.deadline)

    try:
        return asyncio.run(bounded())
    except asyncio.TimeoutError:
        print(f"FAIL: demo exceeded its {args.deadline:.0f}s deadline")
        return 1


if __name__ == "__main__":
    sys.exit(main())
