"""The chaos seam, runtime side: a ``FaultPlan`` replayed for real.

The same plan JSON the simulator's :class:`~repro.chaos.inject.ChaosInjector`
installs maps onto the live cluster like this:

===============  =============================  ===========================
fault            simulator                      runtime
===============  =============================  ===========================
``Crash``        ``node.online = False``        supervisor SIGKILLs the
                                                process; recovery respawns
                                                it (empty state — real
                                                volatile loss) and
                                                anti-entropy catches it up
``Partition``    ``Network`` drops at send      socket layer drops frames
                 time via PartitionSchedule     crossing the cut (same
                                                send-time, half-open
                                                ``[start, end)`` semantics)
``DelaySpike``/  ``MessageFaultLayer`` maps     the *same*
``Reorder``/     one delivery to perturbed      ``MessageFaultLayer``
``Duplicate``    copies on the sim heap         object maps one frame to
                                                perturbed copies on asyncio
                                                timers
``ClockSkew``    Lamport counter advanced       supervisor sends the node a
                 in-process                     ``skew`` control op
===============  =============================  ===========================

``MessageFaultLayer`` was written transport-agnostically (it takes
``now`` as an argument and returns delivery delays); this module reuses
it verbatim rather than reimplementing the windowed-fault semantics —
one implementation, two transports, zero drift.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..chaos.faults import Crash, ClockSkew, FaultPlan, Partition
from ..chaos.inject import FaultReporter, MessageFaultLayer
from ..network.network import NetworkStats
from ..network.partition import PartitionInterval, PartitionSchedule
from ..ports import Rng


class RuntimeFaultSeam:
    """One plan's socket-layer faults, evaluated on the plan time axis.

    The transport asks two questions per outbound frame: is this edge
    cut right now (:meth:`partitioned`), and what delivery delays should
    this frame's copies get (:meth:`deliveries`).  Crash and skew faults
    are process-level; the supervisor pulls their schedules from
    :meth:`crashes` / :meth:`skews` and acts on them itself.
    """

    def __init__(
        self,
        plan: FaultPlan,
        rng: Rng,
        on_fault: Optional[FaultReporter] = None,
    ):
        self.plan = plan
        self.stats = NetworkStats()
        self.layer = MessageFaultLayer(
            plan, rng, self.stats, on_fault=on_fault
        )
        self._partitions = PartitionSchedule([
            PartitionInterval(
                fault.start,
                fault.end,
                tuple(frozenset(g) for g in fault.groups),
            )
            for fault in plan.faults
            if isinstance(fault, Partition)
        ])

    def partitioned(self, now: float, src: int, dst: int) -> bool:
        """Is the ``src -> dst`` edge cut at plan time ``now``?"""
        if not self._partitions.connected(src, dst, now):
            self.stats.dropped_partition += 1
            return True
        return False

    def deliveries(
        self, now: float, src: int, dst: int, payload: object, delay: float
    ) -> List[float]:
        """Delays for each copy of one frame (see MessageFaultLayer)."""
        if not self.layer.has_faults:
            return [delay]
        return self.layer.deliveries(now, src, dst, payload, delay)

    def crashes(self) -> Tuple[Crash, ...]:
        """The plan's crash faults, sorted by onset (supervisor side)."""
        return tuple(sorted(
            (f for f in self.plan.faults if isinstance(f, Crash)),
            key=lambda f: (f.at, f.node),
        ))

    def skews(self) -> Tuple[ClockSkew, ...]:
        """The plan's clock skews, sorted by onset (supervisor side)."""
        return tuple(sorted(
            (f for f in self.plan.faults if isinstance(f, ClockSkew)),
            key=lambda f: (f.at, f.node),
        ))
