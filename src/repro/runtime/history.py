"""Run histories on disk: JSONL trace events + wire-encoded logs.

A runtime run leaves the same evidence a simulator run keeps in memory:

* ``events-<node>.jsonl`` — one trace event per line, in exactly the
  :data:`repro.sim.trace.EVENT_SCHEMAS` vocabulary (validated on write,
  so a runtime history can never drift from what the trace oracle and
  the R5 lint rule understand).  Client-side events the client API
  records use the same schema.
* ``records-<node>.jsonl`` — the node's final log, one wire-encoded
  :class:`~repro.replica.UpdateRecord` per line.

``repro.chaos.offline`` rebuilds an oracle-checkable run from these
files; nothing in the offline path touches a socket or a simulator.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Callable, Dict, Iterable, List, Optional, TextIO, Tuple

from ..replica import UpdateRecord
from ..sim.trace import EVENT_SCHEMAS, TraceEvent
from .wire import decode, encode


def events_path(history_dir: str, label: object) -> str:
    return os.path.join(history_dir, f"events-{label}.jsonl")


def records_path(history_dir: str, label: object) -> str:
    return os.path.join(history_dir, f"records-{label}.jsonl")


class HistoryWriter:
    """Append-only JSONL event stream in the trace-event schema.

    Every write is validated against :data:`EVENT_SCHEMAS` (the dynamic
    R5 check) and flushed — a SIGKILLed node must leave every event it
    logged before the kill on disk.
    """

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle: Optional[TextIO] = open(path, "a", encoding="utf-8")

    def record(
        self, time: float, kind: str, node: Optional[int] = None, **detail
    ) -> None:
        schema = EVENT_SCHEMAS.get(kind)
        if schema is None:
            raise ValueError(f"unregistered trace event kind {kind!r}")
        if set(detail) != set(schema):
            raise ValueError(
                f"trace event {kind!r} detail keys {sorted(detail)} "
                f"!= declared {sorted(schema)}"
            )
        if self._handle is None:
            return
        line = json.dumps(
            {"time": time, "kind": kind, "node": node, "detail": detail},
            sort_keys=True,
        )
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _parse_jsonl(path: str, parse: Callable[[str], object]) -> List[object]:
    """Parse one value per non-empty line, tolerating a *torn tail*.

    A SIGKILL mid-write leaves at most one partial line, and only at the
    end of the file (both writers append + flush whole lines).  An
    unparseable *final* non-empty line is therefore expected crash
    debris: warn and skip it.  An unparseable line with content after it
    is real corruption and still raises.
    """
    out: List[object] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            out.append(parse(line))
        except (ValueError, KeyError, TypeError) as exc:
            if any(later for later in lines[index + 1:]):
                raise
            warnings.warn(
                f"{path}: skipping torn final line "
                f"({type(exc).__name__}: {exc})",
                stacklevel=2,
            )
            break
    return out


def read_events(path: str) -> Tuple[TraceEvent, ...]:
    """One file's events, in write order (a torn final line is skipped
    with a warning — see :func:`_parse_jsonl`)."""

    def parse(line: str) -> TraceEvent:
        data = json.loads(line)
        return TraceEvent(
            time=data["time"],
            kind=data["kind"],
            node=data["node"],
            detail=tuple(sorted(data["detail"].items())),
        )

    return tuple(_parse_jsonl(path, parse))  # type: ignore[arg-type]


def merged_events(paths: Iterable[str]) -> Tuple[TraceEvent, ...]:
    """All files' events merged into one global time-sorted stream.

    Ties break by (node, kind) so the merge is stable across runs; the
    per-node streams are individually ordered, which is all the trace
    oracle's monotonicity check needs after a stable merge.
    """
    out: List[TraceEvent] = []
    for path in paths:
        out.extend(read_events(path))
    out.sort(key=lambda e: (e.time, -1 if e.node is None else e.node, e.kind))
    return tuple(out)


def dump_records(path: str, records: Iterable[UpdateRecord]) -> int:
    """Write a node's log snapshot; returns the record count."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in sorted(records, key=lambda r: r.ts):
            handle.write(encode(record) + "\n")
            count += 1
    return count


def load_records(path: str) -> Tuple[UpdateRecord, ...]:
    """One node's log snapshot (a torn final line is skipped with a
    warning — see :func:`_parse_jsonl`)."""

    def parse(line: str) -> UpdateRecord:
        record = decode(line)
        if not isinstance(record, UpdateRecord):
            raise ValueError(
                f"expected an UpdateRecord line, got {type(record).__name__}"
            )
        return record

    return tuple(_parse_jsonl(path, parse))  # type: ignore[arg-type]


def load_history(
    history_dir: str,
) -> Tuple[Tuple[TraceEvent, ...], Dict[int, Tuple[UpdateRecord, ...]]]:
    """Everything a recorded run left behind: (merged events, node logs).

    Node logs are keyed by node id, parsed from ``records-<id>.jsonl``
    names; event files may carry any label (node ids, ``client``).
    """
    event_files = sorted(
        os.path.join(history_dir, name)
        for name in os.listdir(history_dir)
        if name.startswith("events-") and name.endswith(".jsonl")
    )
    logs: Dict[int, Tuple[UpdateRecord, ...]] = {}
    for name in sorted(os.listdir(history_dir)):
        if name.startswith("records-") and name.endswith(".jsonl"):
            label = name[len("records-"):-len(".jsonl")]
            logs[int(label)] = load_records(
                os.path.join(history_dir, name)
            )
    return merged_events(event_files), logs
