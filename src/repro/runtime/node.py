"""One replica process: the protocol core behind an asyncio TCP server.

``python -m repro.runtime.node --spec '<NodeSpec JSON>'`` hosts exactly
the objects the simulator hosts — a :class:`~repro.shard.node.ShardNode`,
a :class:`~repro.network.broadcast.ReliableBroadcast` (the gossip
service) and a :class:`~repro.shard.sync.SyncManager` — wired to the
live port adapters instead of the simulated ones.  The process model is
the paper's: every node is a full replica, processes transactions
locally without cross-node coordination, and relies on
flooding + anti-entropy for eventual delivery.

Besides peer gossip, the server answers a small client vocabulary
(see :data:`OPS`): submit a transaction, read the local state, snapshot
the log, advance the Lamport clock (the ClockSkew fault's live form),
dump history files, stop.  Client frames share the TCP port with the
protocol; the transport forwards anything that is not a peer envelope.

Crash faults never reach this module: a live crash is the supervisor
SIGKILLing the process mid-flight, and recovery is a respawn — state
gone, log gone — followed by genuine anti-entropy catch-up.  That is a
strictly stronger perturbation than the simulator's ``online`` flag and
exactly the volatile-loss story of the paper's Section 4.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional

from collections import OrderedDict

from ..apps.airline.state import AirlineState
from ..gossip import GOSSIP_KINDS
from ..network.broadcast import BroadcastConfig, ReliableBroadcast
from ..replica import MergeOutcome, UpdateRecord
from ..shard.node import ShardNode
from ..shard.sync import SyncManager
from ..sim.rng import SeededStreams
from .clock import RuntimeClock
from .config import NodeSpec
from .faults import RuntimeFaultSeam
from .history import HistoryWriter, dump_records, events_path, records_path
from .profile import RuntimeProfile, profile_path
from .transport import TcpTransport
from .wire import encode

#: request frame: ("req", request_id, op, args-tuple)
REQ = "req"
#: response frame: ("res", request_id, ok, value)
RES = "res"

OPS = (
    "ping", "get", "submit", "query", "status", "snapshot", "skew",
    "dump", "stop",
)

#: retained submit results keyed by client idempotency token, so a
#: client whose reply was lost can requery instead of resubmitting.
TOKEN_CACHE = 4096


class NodeServer:
    """The live host for one ShardNode."""

    def __init__(self, spec: NodeSpec):
        self.spec = spec
        cluster = spec.cluster
        self.clock = RuntimeClock(cluster.epoch, cluster.scale)
        streams = SeededStreams(cluster.seed)
        plan = cluster.plan()
        self.faults: Optional[RuntimeFaultSeam] = None
        if plan is not None:
            self.faults = RuntimeFaultSeam(
                plan,
                # per-process stream: each node perturbs its *outbound*
                # edges, so streams must not be shared across processes.
                streams.stream(f"chaos-{spec.node_id}"),
                on_fault=self._on_message_fault,
            )
        self.profile = RuntimeProfile()
        self.transport = TcpTransport(
            cluster, spec.node_id, self.clock, faults=self.faults,
            profile=self.profile,
        )
        self.transport.on_request = self._on_request
        self.node = ShardNode(spec.node_id, AirlineState())
        self.node.replica.on_merge = self._on_merge
        self.broadcast = ReliableBroadcast(
            self.clock,
            self.transport,
            BroadcastConfig(
                anti_entropy_interval=cluster.anti_entropy_interval,
                fanout=cluster.fanout,
            ),
            rng=streams.stream(f"gossip-{spec.node_id}"),
        )
        # this process hosts one node; gossip targets the whole cluster.
        self.broadcast.membership = cluster.node_ids
        self.broadcast.depends_on = lambda key, item: item.seen_txids
        self.broadcast.on_event = self._trace
        self.broadcast.attach(
            spec.node_id,
            self._deliver,
            register_transport=False,
            on_deliver_batch=self._deliver_batch,
        )
        self.transport.register(spec.node_id, self._dispatch)
        # whole-frame delivery: one inbound batch frame's gossip
        # payloads merge inside one delivery batch (one merge_span).
        self.transport.register_batch(spec.node_id, self._dispatch_frame)
        self.sync = SyncManager(
            clock=self.clock,
            transport=self.transport,
            broadcast=self.broadcast,
            apply=self._apply_synchronized,
        )
        self.history: Optional[HistoryWriter] = None
        if cluster.history_dir is not None:
            self.history = HistoryWriter(
                events_path(cluster.history_dir, spec.node_id)
            )
        self._seq = 0
        self._token_results: "OrderedDict[str, tuple]" = OrderedDict()
        self._stopping = asyncio.Event()

    # -- tracing ----------------------------------------------------------

    def _trace(self, kind: str, node=None, **detail) -> None:
        if self.history is not None:
            self.history.record(self.clock.now, kind, node, **detail)

    def _on_message_fault(self, kind: str, node: int, info: str) -> None:
        self._trace("fault_inject", node, fault=kind, info=info)

    def _on_merge(self, outcome: MergeOutcome) -> None:
        node_id = self.spec.node_id
        if outcome.added > 1:
            self._trace(
                "merge_batch", node_id,
                count=outcome.added,
                displacement=outcome.displacement,
                replayed=outcome.replayed,
            )
        elif outcome.fastpath:
            self._trace("merge_fastpath", node_id)
        else:
            self._trace(
                "merge_undo", node_id,
                displacement=outcome.displacement,
                replayed=outcome.replayed,
            )

    # -- protocol plumbing -------------------------------------------------

    def _dispatch(self, src: int, payload: object) -> None:
        kind = payload[0]
        if kind == "items" or kind in GOSSIP_KINDS:
            self.broadcast.receive(self.spec.node_id, payload, src=src)
        else:
            self.sync.handle(self.spec.node_id, src, payload)

    def _dispatch_frame(self, envelopes: tuple) -> None:
        """One wire frame's protocol payloads, delivered together: every
        record they release joins a single delivery batch, so a batched
        frame costs one ``merge_span`` cycle regardless of how many
        DELTAs or rumors it carried."""
        with self.broadcast.delivery_batch(self.spec.node_id):
            for src, payload in envelopes:
                self._dispatch(src, payload)

    def _deliver(self, key: object, item: object) -> None:
        assert isinstance(item, UpdateRecord)
        if self.node.receive(item):
            self._trace(
                "deliver", self.spec.node_id,
                txid=item.txid, origin=item.origin,
            )

    def _deliver_batch(self, batch: tuple) -> None:
        records = [item for _key, item in batch]
        for item in self.node.receive_batch(records):
            self._trace(
                "deliver", self.spec.node_id,
                txid=item.txid, origin=item.origin,
            )

    # -- submission --------------------------------------------------------

    def initiate_now(self, transaction) -> UpdateRecord:
        """The availability path: decide locally, publish, return the
        record (clients get its txid and seen-count back)."""
        txid = self.spec.txid(self._seq)
        self._seq += 1
        record = self.node.initiate(txid, transaction, self.clock.now)
        self._trace(
            "initiate", self.spec.node_id,
            txid=txid, family=transaction.name,
            seen=len(record.seen_txids),
        )
        self.broadcast.publish(self.spec.node_id, txid, record)
        return record

    def _apply_synchronized(self, origin: int, transaction) -> None:
        assert origin == self.spec.node_id
        self.initiate_now(transaction)

    # -- client API --------------------------------------------------------

    async def _on_request(self, frame: object) -> Optional[str]:
        if not (
            isinstance(frame, tuple) and len(frame) == 4
            and frame[0] == REQ
        ):
            return None
        _, request_id, op, args = frame
        try:
            value = self._handle_op(op, args)
            response = (RES, request_id, True, value)
        except Exception as exc:  # surfaces to the client, not the log
            response = (RES, request_id, False, f"{type(exc).__name__}: {exc}")
        if op == "stop":
            # let the transport flush the response before teardown.
            asyncio.get_running_loop().call_soon(self._stopping.set)
        return encode(response)

    def _remember_token(self, token: str, result: tuple) -> None:
        self._token_results[token] = result
        while len(self._token_results) > TOKEN_CACHE:
            self._token_results.popitem(last=False)

    def _handle_op(self, op: str, args: tuple) -> object:
        node_id = self.spec.node_id
        if op == "ping":
            return (node_id, self.spec.incarnation)
        if op == "get":
            state = self.node.state
            return (state.assigned, state.waiting)
        if op == "submit":
            token: Optional[str] = None
            if len(args) == 2:
                transaction, token = args
                if token is not None:
                    cached = self._token_results.get(token)
                    if cached is not None:
                        return cached
            else:
                (transaction,) = args
            record = self.initiate_now(transaction)
            result = (record.txid, len(record.seen_txids))
            if token is not None:
                self._remember_token(token, result)
            return result
        if op == "query":
            # retry path: was a submit with this token already decided?
            (token,) = args
            return self._token_results.get(token)
        if op == "status":
            return (
                len(self.node.log),
                self.node.transactions_initiated,
                self.spec.incarnation,
                tuple(sorted(self.node.known_txids)),
                self.profile.snapshot(),
            )
        if op == "snapshot":
            return tuple(self.node.log)
        if op == "skew":
            (drift,) = args
            self.node.clock.advance(drift)
            self._trace(
                "fault_inject", node_id,
                fault="clock_skew", info=f"drift={drift}",
            )
            return self.node.clock.counter
        if op == "dump":
            if self.spec.cluster.history_dir is None:
                raise RuntimeError("no history directory configured")
            count = dump_records(
                records_path(self.spec.cluster.history_dir, node_id),
                self.node.log,
            )
            self.profile.dump(
                profile_path(self.spec.cluster.history_dir, node_id)
            )
            return count
        if op == "stop":
            return True
        raise ValueError(f"unknown op {op!r}")

    # -- lifecycle ---------------------------------------------------------

    async def serve(self) -> None:
        await self.transport.start()
        self.broadcast.start_anti_entropy()
        # announce readiness on stdout: the supervisor waits for this.
        print(f"ready {self.spec.node_id} {self.spec.incarnation}", flush=True)
        await self._stopping.wait()
        await self.transport.close()
        if self.history is not None:
            self.history.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.node",
        description="host one SHARD replica process",
    )
    parser.add_argument(
        "--spec", required=True,
        help="NodeSpec JSON (or @path to read it from a file)",
    )
    args = parser.parse_args(argv)
    text = args.spec
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            text = handle.read()
    server = NodeServer(NodeSpec.from_json(text))
    asyncio.run(server.serve())
    return 0


if __name__ == "__main__":
    sys.exit(main())
