"""The asyncio TCP Transport adapter.

One node process runs one :class:`TcpTransport`: a TCP server accepting
frames from peers and clients, plus one persistent outbound connection
per peer.  Protocol payloads travel as ``("msg", src, payload)``
envelopes in the tagged JSON codec of :mod:`repro.runtime.wire` on
4-byte length-prefixed frames; any other frame is handed to the node
server's request handler (the client API shares the port).

Faithfulness to the port contract:

* **Unreliable by design.**  ``send`` never blocks the protocol: frames
  are queued to a per-peer sender task, and if the peer is unreachable
  the frame is dropped — exactly the "maybe delivered, maybe not" the
  Transport port promises and the anti-entropy layer assumes.  Senders
  reconnect lazily on the next send.
* **The chaos seam sits where the cable is.**  An installed
  :class:`~repro.runtime.faults.RuntimeFaultSeam` is consulted per
  outbound *payload*, before any coalescing: partitioned edges drop at
  send time (the simulator's convention), delay/reorder/duplicate
  faults map one payload onto perturbed copies scheduled on the clock —
  the *same* ``MessageFaultLayer`` arithmetic the simulator uses.
  Batching is strictly a framing detail below the fault seam, so a
  batched wire keeps sim-parity fault semantics: a dropped payload
  simply never joins a batch, a duplicated one joins twice, a delayed
  one joins whatever batch is forming when its timer fires.

The hot path is write-side coalescing: ``send`` encodes each payload
once (to its canonical JSON text) and queues the *text*; the per-peer
sender task drains whatever has accumulated and splices it into a
single ``Batch`` frame (:func:`~repro.runtime.wire.batch_frame_from_texts`)
— flush triggers are batch size (``max_batch`` payloads), frame size
(``MAX_FRAME`` guarded) and an optional wall deadline
(``flush_interval`` seconds of extra coalescing after the first
payload; 0 = greedy, which adds no latency because a busy writer
naturally accumulates a queue).  Inbound, frame boundaries are kept
(``FrameSplitter(expand=False)``) so one arriving batch frame becomes
one delivery batch at the node — one ``merge_span`` undo/redo cycle no
matter how many gossip payloads it carried.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from ..ports import Handler
from .clock import RuntimeClock, perf_ns
from .config import ClusterSpec
from .faults import RuntimeFaultSeam
from .profile import RuntimeProfile
from .wire import (
    Batch,
    FrameSplitter,
    MAX_FRAME,
    batch_frame_from_texts,
    encode,
    frame_from_text,
)

#: protocol envelope tag (peer-to-peer); anything else is a request.
MSG = "msg"

#: non-protocol frames (client requests) are awaited on this hook; the
#: return value is the *pre-encoded* response payload text (or None for
#: no response) — the transport owns framing, batching and draining.
RequestHandler = Callable[[object], Awaitable[Optional[str]]]

#: a whole inbound frame's protocol payloads, delivered together.
BatchHandler = Callable[[Tuple[Tuple[int, object], ...]], None]


class TcpTransport:
    """The live Transport adapter for one node process."""

    def __init__(
        self,
        spec: ClusterSpec,
        node_id: int,
        clock: RuntimeClock,
        faults: Optional[RuntimeFaultSeam] = None,
        profile: Optional[RuntimeProfile] = None,
    ):
        self.spec = spec
        self.node_id = node_id
        self.clock = clock
        self.faults = faults
        self.profile = profile if profile is not None else RuntimeProfile()
        self.on_request: Optional[RequestHandler] = None
        self._handlers: Dict[int, Handler] = {}
        self._batch_handlers: Dict[int, BatchHandler] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._queues: Dict[int, asyncio.Queue] = {}
        self._senders: Dict[int, asyncio.Task] = {}
        self.max_batch = spec.max_batch
        self.flush_interval = spec.flush_interval
        self.sent = 0
        self.dropped = 0
        self.delivered = 0

    # -- Transport port ---------------------------------------------------

    def register(self, node_id: int, handler: Handler) -> None:
        self._handlers[node_id] = handler

    def register_batch(self, node_id: int, handler: BatchHandler) -> None:
        """Opt a node into whole-frame delivery: every inbound frame's
        protocol payloads arrive as one call (singles as a 1-batch)."""
        self._batch_handlers[node_id] = handler

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return self.spec.node_ids

    def send(self, src: int, dst: int, payload: object) -> bool:
        """Queue one protocol payload for ``dst``; never blocks."""
        self.sent += 1
        self.profile.payloads_sent += 1
        now = self.clock.now
        if self.faults is not None and self.faults.partitioned(
            now, src, dst
        ):
            self.dropped += 1
            self.profile.payloads_dropped += 1
            return False
        delays = (
            self.faults.deliveries(now, src, dst, payload, 0.0)
            if self.faults is not None
            else [0.0]
        )
        if dst in self._handlers:
            # self-delivery short-circuits the socket (gossip never
            # self-sends, but the sync path may in degenerate configs).
            for delay in delays:
                if delay <= 0.0:
                    self._deliver_local(dst, src, payload)
                else:
                    self.clock.schedule(
                        delay,
                        lambda d=dst, s=src, p=payload:
                            self._deliver_local(d, s, p),
                    )
            return True
        started = perf_ns()
        text = encode((MSG, src, payload))
        self.profile.encoded(perf_ns() - started)
        for delay in delays:
            if delay <= 0.0:
                self._enqueue(dst, text)
            else:
                self.clock.schedule(
                    delay, lambda d=dst, t=text: self._enqueue(d, t)
                )
        return True

    def _deliver_local(self, dst: int, src: int, payload: object) -> None:
        self.delivered += 1
        self.profile.payloads_delivered += 1
        self._handlers[dst](src, payload)

    # -- outbound ---------------------------------------------------------

    def _enqueue(self, dst: int, text: str) -> None:
        queue = self._queues.get(dst)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[dst] = queue
            self._senders[dst] = asyncio.get_running_loop().create_task(
                self._sender(dst, queue)
            )
        queue.put_nowait(text)
        self.profile.queued(queue.qsize())

    async def _sender(self, dst: int, queue: asyncio.Queue) -> None:
        """Own the outbound connection to ``dst``: lazy connect, write
        coalesced frames, drop them (and the connection) on any error."""
        writer: Optional[asyncio.StreamWriter] = None
        host, port = self.spec.address(dst)
        carry: Optional[str] = None  # a text deferred by the size cap
        stopping = False
        while not stopping:
            if carry is not None:
                text, carry = carry, None
            else:
                text = await queue.get()
                if text is None:
                    break
            batch = [text]
            if self.flush_interval > 0.0:
                # deadline-based coalescing: give concurrent senders one
                # flush window to pile on before the frame seals.
                await asyncio.sleep(self.flush_interval)
            size = len(text)
            while len(batch) < self.max_batch:
                try:
                    more = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if more is None:
                    stopping = True
                    break
                if size + len(more) > MAX_FRAME // 2:
                    carry = more  # keep frames comfortably bounded
                    break
                batch.append(more)
                size += len(more)
            if len(batch) == 1:
                frame = frame_from_text(batch[0])
            else:
                frame = batch_frame_from_texts(batch)
            try:
                if writer is None:
                    _, writer = await asyncio.open_connection(host, port)
                writer.write(frame)
                self.profile.wrote_frame(len(frame), len(batch))
                await writer.drain()
            except OSError:
                self.dropped += len(batch)
                self.profile.payloads_dropped += len(batch)
                if writer is not None:
                    writer.close()
                writer = None
        if writer is not None:
            writer.close()

    # -- inbound ----------------------------------------------------------

    async def start(self) -> None:
        host, port = self.spec.address(self.node_id)
        self._server = await asyncio.start_server(
            self._serve_connection, host, port
        )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # expand=False keeps frame boundaries: one batch frame becomes
        # one delivery batch at the node.
        splitter = FrameSplitter(expand=False)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                started = perf_ns()
                frames = list(splitter.feed(chunk))
                self.profile.decoded(perf_ns() - started)
                responses: List[str] = []
                for frame in frames:
                    await self._dispatch_frame(frame, responses)
                if responses:
                    if len(responses) == 1:
                        writer.write(frame_from_text(responses[0]))
                        self.profile.wrote_frame(
                            len(responses[0]) + 4, 1
                        )
                    else:
                        out = batch_frame_from_texts(responses)
                        writer.write(out)
                        self.profile.wrote_frame(len(out), len(responses))
                    await writer.drain()
        except (OSError, ValueError, asyncio.IncompleteReadError):
            pass
        finally:
            self.profile.absorb_splitter(splitter)
            writer.close()

    def _is_envelope(self, frame: object) -> bool:
        return (
            isinstance(frame, tuple)
            and len(frame) == 3
            and frame[0] == MSG
        )

    async def _dispatch_frame(
        self, frame: object, responses: List[str]
    ) -> None:
        """Route one inbound frame: protocol envelopes to the node's
        handler (whole-frame batches preserved), anything else to the
        request hook, collecting its response text."""
        if isinstance(frame, Batch):
            envelopes = [
                (f[1], f[2]) for f in frame if self._is_envelope(f)
            ]
            if envelopes:
                self._deliver_inbound(tuple(envelopes))
            for sub in frame:
                if not self._is_envelope(sub):
                    await self._request(sub, responses)
        elif self._is_envelope(frame):
            _, src, payload = frame
            self._deliver_inbound(((src, payload),))
        else:
            await self._request(frame, responses)

    def _deliver_inbound(
        self, envelopes: Tuple[Tuple[int, object], ...]
    ) -> None:
        self.delivered += len(envelopes)
        self.profile.payloads_delivered += len(envelopes)
        batch_handler = self._batch_handlers.get(self.node_id)
        if batch_handler is not None:
            batch_handler(envelopes)
            return
        handler = self._handlers.get(self.node_id)
        if handler is not None:
            for src, payload in envelopes:
                handler(src, payload)

    async def _request(self, frame: object, responses: List[str]) -> None:
        if self.on_request is None:
            return
        text = await self.on_request(frame)
        if text is not None:
            responses.append(text)

    async def close(self) -> None:
        for queue in self._queues.values():
            queue.put_nowait(None)
        for task in self._senders.values():
            try:
                await asyncio.wait_for(task, timeout=1.0)
            except asyncio.TimeoutError:
                task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
