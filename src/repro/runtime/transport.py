"""The asyncio TCP Transport adapter.

One node process runs one :class:`TcpTransport`: a TCP server accepting
frames from peers and clients, plus one persistent outbound connection
per peer.  Protocol payloads travel as ``("msg", src, payload)``
envelopes in the tagged JSON codec of :mod:`repro.runtime.wire` on
4-byte length-prefixed frames; any other frame is handed to the node
server's request handler (the client API shares the port).

Faithfulness to the port contract:

* **Unreliable by design.**  ``send`` never blocks the protocol: frames
  are queued to a per-peer sender task, and if the peer is unreachable
  the frame is dropped — exactly the "maybe delivered, maybe not" the
  Transport port promises and the anti-entropy layer assumes.  Senders
  reconnect lazily on the next send.
* **The chaos seam sits where the cable is.**  An installed
  :class:`~repro.runtime.faults.RuntimeFaultSeam` is consulted per
  outbound frame: partitioned edges drop at send time (the simulator's
  convention), delay/reorder/duplicate faults map one frame onto
  perturbed copies scheduled on the clock — the *same*
  ``MessageFaultLayer`` arithmetic the simulator uses.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Optional, Tuple

from ..ports import Handler
from .clock import RuntimeClock
from .config import ClusterSpec
from .faults import RuntimeFaultSeam
from .wire import FrameSplitter, encode_frame

#: protocol envelope tag (peer-to-peer); anything else is a request.
MSG = "msg"

#: non-protocol frames (client requests) are awaited on this hook.
RequestHandler = Callable[
    [object, asyncio.StreamWriter], Awaitable[None]
]


class TcpTransport:
    """The live Transport adapter for one node process."""

    def __init__(
        self,
        spec: ClusterSpec,
        node_id: int,
        clock: RuntimeClock,
        faults: Optional[RuntimeFaultSeam] = None,
    ):
        self.spec = spec
        self.node_id = node_id
        self.clock = clock
        self.faults = faults
        self.on_request: Optional[RequestHandler] = None
        self._handlers: Dict[int, Handler] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._queues: Dict[int, asyncio.Queue] = {}
        self._senders: Dict[int, asyncio.Task] = {}
        self.sent = 0
        self.dropped = 0
        self.delivered = 0

    # -- Transport port ---------------------------------------------------

    def register(self, node_id: int, handler: Handler) -> None:
        self._handlers[node_id] = handler

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return self.spec.node_ids

    def send(self, src: int, dst: int, payload: object) -> bool:
        """Queue one protocol payload for ``dst``; never blocks."""
        self.sent += 1
        now = self.clock.now
        if self.faults is not None and self.faults.partitioned(
            now, src, dst
        ):
            self.dropped += 1
            return False
        delays = (
            self.faults.deliveries(now, src, dst, payload, 0.0)
            if self.faults is not None
            else [0.0]
        )
        frame = encode_frame((MSG, src, payload))
        for delay in delays:
            if delay <= 0.0:
                self._enqueue(dst, frame)
            else:
                self.clock.schedule(
                    delay, lambda d=dst, f=frame: self._enqueue(d, f)
                )
        return True

    # -- outbound ---------------------------------------------------------

    def _enqueue(self, dst: int, frame: bytes) -> None:
        if dst in self._handlers:
            # self-delivery short-circuits the socket (gossip never
            # self-sends, but the sync path may in degenerate configs).
            splitter = FrameSplitter()
            for _, src, payload in splitter.feed(frame):
                self.delivered += 1
                self._handlers[dst](src, payload)
            return
        queue = self._queues.get(dst)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[dst] = queue
            self._senders[dst] = asyncio.get_running_loop().create_task(
                self._sender(dst, queue)
            )
        queue.put_nowait(frame)

    async def _sender(self, dst: int, queue: asyncio.Queue) -> None:
        """Own the outbound connection to ``dst``: lazy connect, write
        queued frames, drop them (and the connection) on any error."""
        writer: Optional[asyncio.StreamWriter] = None
        host, port = self.spec.address(dst)
        while True:
            frame = await queue.get()
            if frame is None:
                break
            try:
                if writer is None:
                    _, writer = await asyncio.open_connection(host, port)
                writer.write(frame)
                await writer.drain()
            except OSError:
                self.dropped += 1
                if writer is not None:
                    writer.close()
                writer = None
        if writer is not None:
            writer.close()

    # -- inbound ----------------------------------------------------------

    async def start(self) -> None:
        host, port = self.spec.address(self.node_id)
        self._server = await asyncio.start_server(
            self._serve_connection, host, port
        )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        splitter = FrameSplitter()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for frame in splitter.feed(chunk):
                    await self._dispatch(frame, writer)
        except (OSError, ValueError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def _dispatch(
        self, frame: object, writer: asyncio.StreamWriter
    ) -> None:
        if (
            isinstance(frame, tuple)
            and len(frame) == 3
            and frame[0] == MSG
        ):
            _, src, payload = frame
            handler = self._handlers.get(self.node_id)
            if handler is not None:
                self.delivered += 1
                handler(src, payload)
        elif self.on_request is not None:
            await self.on_request(frame, writer)

    async def close(self) -> None:
        for queue in self._queues.values():
            queue.put_nowait(None)
        for task in self._senders.values():
            try:
                await asyncio.wait_for(task, timeout=1.0)
            except asyncio.TimeoutError:
                task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
