"""A load generator: sustained request streams against a live cluster.

Drives the airline workload (the paper's running example) through the
client API at a target rate: each operation picks a node and a
transaction family from a seeded RNG, so workloads are nameable by
``(seed, rate, duration)``.  Submissions to dead or partitioned-away
nodes fail fast and are counted as rejections — precisely the
availability behavior the paper trades consistency for; the generator
keeps going, like real clients would.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional

from ..apps.airline.transactions import Cancel, MoveDown, MoveUp, Request
from ..ports import Rng
from .client import ClusterClient, NodeUnreachable, RequestError


@dataclass
class LoadStats:
    submitted: int = 0
    rejected: int = 0
    #: wall seconds actually spent submitting.
    elapsed: float = 0.0
    txids: List[int] = field(default_factory=list)

    @property
    def ops_per_sec(self) -> float:
        return self.submitted / self.elapsed if self.elapsed > 0 else 0.0


class LoadGenerator:
    """Seeded airline traffic against a ClusterClient."""

    def __init__(
        self,
        client: ClusterClient,
        rng: Rng,
        capacity: int = 2,
        persons: int = 12,
        mover_weight: float = 0.4,
    ):
        self.client = client
        self.rng = rng
        self.capacity = capacity
        self._persons = [f"p{i}" for i in range(persons)]
        self.mover_weight = mover_weight

    def _next_transaction(self):
        roll = self.rng.random()
        if roll < self.mover_weight / 2:
            return MoveUp(self.capacity)
        if roll < self.mover_weight:
            return MoveDown(self.capacity)
        person = self.rng.choice(self._persons)
        if roll < self.mover_weight + (1.0 - self.mover_weight) * 0.75:
            return Request(person)
        return Cancel(person)

    async def run(
        self,
        n_ops: int,
        rate: Optional[float] = None,
        nodes: Optional[List[int]] = None,
    ) -> LoadStats:
        """Submit ``n_ops`` operations, optionally paced at ``rate``
        ops/wall-second, spread over ``nodes`` (default: all)."""
        stats = LoadStats()
        targets = list(nodes) if nodes is not None else list(
            self.client.spec.node_ids
        )
        clock = self.client.clock
        started = clock.now
        for i in range(n_ops):
            node_id = self.rng.choice(targets)
            transaction = self._next_transaction()
            try:
                txid = await self.client.submit(node_id, transaction)
                stats.submitted += 1
                stats.txids.append(txid)
            except (NodeUnreachable, RequestError):
                stats.rejected += 1
            if rate is not None:
                # pace on the wall axis: plan-time elapsed * scale.
                target_wall = (i + 1) / rate
                elapsed_wall = (clock.now - started) * clock.scale
                if target_wall > elapsed_wall:
                    await asyncio.sleep(target_wall - elapsed_wall)
        stats.elapsed = (clock.now - started) * clock.scale
        return stats
