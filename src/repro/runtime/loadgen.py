"""A load generator: sustained request streams against a live cluster.

The live cluster and the simulator now consume **one workload
definition**: a :class:`~repro.workloads.spec.WorkloadSpec`.  By
default the generator runs the ``uniform`` airline spec — a
spec-encoded rendering of the generator's historical behavior (uniform
person pool, movers/request/cancel split) that is draw-for-draw
identical to the legacy code path; any other spec (Zipfian key skew,
different category mixes) plugs in unchanged.  ``legacy=True`` keeps
the original hand-rolled synthesis as an A/B control — the parity test
in ``tests/runtime`` holds the two paths equal, so the flag exists to
*prove* equivalence, not to preserve divergent behavior.

Submissions to dead or partitioned-away nodes fail fast and are counted
as rejections — precisely the availability behavior the paper trades
consistency for; the generator keeps going, like real clients would.

Two driving modes:

* :meth:`run` — open-loop pacing at a target ops/wall-second, node
  chosen uniformly per op (the historical interface);
* :meth:`run_stream` — replay the spec's full deterministic
  ``(time, node, transaction)`` stream, the *same* events the
  simulator executes, with sim times paced onto the wall axis.

Both accept ``pipeline``: the submit window depth.  ``pipeline=1`` is
the historical closed loop (one op in flight, wait for its reply);
deeper windows keep that many submits in flight at once, riding the
client's demultiplexed connections and coalesced ``Batch`` frames.
Pipelining is a client-side knob — the replicas decide exactly the
same way either way, which the runtime parity suite enforces.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..apps.airline.transactions import Cancel, MoveDown, MoveUp, Request
from ..ports import Rng
from ..workloads.spec import WorkloadSpec
from ..workloads.synth import (
    Synthesizer,
    make_synthesizer,
    uniform_airline_spec,
)
from .client import ClusterClient, NodeUnreachable, RequestError


@dataclass
class LoadStats:
    submitted: int = 0
    rejected: int = 0
    #: wall seconds actually spent submitting.
    elapsed: float = 0.0
    txids: List[int] = field(default_factory=list)

    @property
    def ops_per_sec(self) -> float:
        return self.submitted / self.elapsed if self.elapsed > 0 else 0.0


class LoadGenerator:
    """Spec-driven traffic against a ClusterClient (see module docstring)."""

    def __init__(
        self,
        client: ClusterClient,
        rng: Rng,
        capacity: int = 2,
        persons: int = 12,
        mover_weight: float = 0.4,
        spec: Optional[WorkloadSpec] = None,
        legacy: bool = False,
    ):
        self.client = client
        self.rng = rng
        self.capacity = capacity
        self._persons = [f"p{i}" for i in range(persons)]
        self.mover_weight = mover_weight
        self.legacy = legacy
        self.spec = spec if spec is not None else uniform_airline_spec(
            capacity=capacity, persons=persons, mover_weight=mover_weight
        )
        self._synth: Optional[Synthesizer] = (
            None if legacy else make_synthesizer(self.spec)
        )

    def _next_transaction(self):
        if self._synth is not None:
            return self._synth(self.rng)
        # legacy A/B control: the original hand-rolled airline split.
        roll = self.rng.random()
        if roll < self.mover_weight / 2:
            return MoveUp(self.capacity)
        if roll < self.mover_weight:
            return MoveDown(self.capacity)
        person = self.rng.choice(self._persons)
        if roll < self.mover_weight + (1.0 - self.mover_weight) * 0.75:
            return Request(person)
        return Cancel(person)

    async def _submit(
        self, node_id: int, transaction, stats: LoadStats
    ) -> None:
        try:
            txid = await self.client.submit(node_id, transaction)
            stats.submitted += 1
            stats.txids.append(txid)
        except (NodeUnreachable, RequestError):
            stats.rejected += 1

    def _absorb_txids(
        self, stats: LoadStats, txids: List[Optional[int]]
    ) -> None:
        for txid in txids:
            if txid is None:
                stats.rejected += 1
            else:
                stats.submitted += 1
                stats.txids.append(txid)

    async def run(
        self,
        n_ops: int,
        rate: Optional[float] = None,
        nodes: Optional[List[int]] = None,
        pipeline: int = 1,
    ) -> LoadStats:
        """Submit ``n_ops`` operations, optionally paced at ``rate``
        ops/wall-second, spread over ``nodes`` (default: all), with at
        most ``pipeline`` submits in flight (1 = closed loop)."""
        if pipeline < 1:
            raise ValueError("pipeline must be >= 1")
        stats = LoadStats()
        targets = list(nodes) if nodes is not None else list(
            self.client.spec.node_ids
        )
        clock = self.client.clock
        started = clock.now
        inflight: set = set()
        for i in range(n_ops):
            node_id = self.rng.choice(targets)
            transaction = self._next_transaction()
            if pipeline == 1:
                await self._submit(node_id, transaction, stats)
            else:
                while len(inflight) >= pipeline:
                    _, inflight = await asyncio.wait(
                        inflight, return_when=asyncio.FIRST_COMPLETED
                    )
                inflight.add(asyncio.get_running_loop().create_task(
                    self._submit(node_id, transaction, stats)
                ))
            if rate is not None:
                # pace on the wall axis: plan-time elapsed * scale.
                target_wall = (i + 1) / rate
                elapsed_wall = (clock.now - started) * clock.scale
                if target_wall > elapsed_wall:
                    await asyncio.sleep(target_wall - elapsed_wall)
        if inflight:
            await asyncio.wait(inflight)
        stats.elapsed = (clock.now - started) * clock.scale
        return stats

    async def run_stream(
        self,
        time_scale: float = 1.0,
        pipeline: int = 1,
        nodes: Optional[List[int]] = None,
    ) -> LoadStats:
        """Replay the spec's deterministic event stream — identical to
        what the simulator schedules — against the live cluster.

        Event sim-times become wall deadlines (divided by
        ``time_scale``; raise it to compress a 60-sim-second workload
        into a short real-time run).  Node indices map onto ``nodes``
        (default: all cluster node ids) in order, so a one-element
        ``nodes`` list funnels the whole stream to a single replica —
        the deterministic-decide-order configuration the parity suite
        uses.  With ``pipeline > 1``, every clump of events whose
        deadlines have already passed is submitted as one coalesced
        pipelined burst per target node."""
        # imported here: stream generation is only needed in this mode.
        from ..workloads.stream import generate_stream

        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        if pipeline < 1:
            raise ValueError("pipeline must be >= 1")
        events = list(generate_stream(self.spec))
        targets = list(nodes) if nodes is not None else list(
            self.client.spec.node_ids
        )
        stats = LoadStats()
        clock = self.client.clock
        started = clock.now
        if pipeline == 1:
            for event in events:
                deadline = event.time / time_scale
                elapsed_wall = (clock.now - started) * clock.scale
                if deadline > elapsed_wall:
                    await asyncio.sleep(deadline - elapsed_wall)
                node_id = targets[event.node % len(targets)]
                await self._submit(node_id, event.transaction, stats)
        else:
            i, n = 0, len(events)
            while i < n:
                deadline = events[i].time / time_scale
                elapsed_wall = (clock.now - started) * clock.scale
                if deadline > elapsed_wall:
                    await asyncio.sleep(deadline - elapsed_wall)
                    elapsed_wall = (clock.now - started) * clock.scale
                # everything already due forms one pipelined burst.
                j = i + 1
                while j < n and events[j].time / time_scale <= elapsed_wall:
                    j += 1
                by_node: Dict[int, list] = {}
                for event in events[i:j]:
                    node_id = targets[event.node % len(targets)]
                    by_node.setdefault(node_id, []).append(
                        event.transaction
                    )
                i = j
                results = await asyncio.gather(*[
                    self.client.submit_many(
                        node_id, transactions, window=pipeline
                    )
                    for node_id, transactions in by_node.items()
                ])
                for txids in results:
                    self._absorb_txids(stats, txids)
        stats.elapsed = (clock.now - started) * clock.scale
        return stats
