"""The live Clock adapter: scaled wall clock over a shared epoch.

This is the single module in the repository allowed to read the host's
clock (shardlint R3 allowlists exactly this path; see
``repro/lint/rules/determinism.py``).  Everything else — protocol state
machines, the node server, the supervisor — takes time through the
:class:`repro.ports.Clock` port this module implements.

Two design points matter for fault replay:

* **Shared epoch.**  All node processes of one cluster are handed the
  same ``epoch`` (a wall-clock instant chosen by the supervisor before
  the first spawn).  ``now`` is seconds since that epoch, so fault
  windows expressed on the plan's time axis ("partition [10, 30)") mean
  the same instant in every process — the property the simulator gets
  for free from its single virtual clock.
* **Time scale.**  Plans and gossip intervals are authored in simulated
  seconds where anti-entropy ticks every ~5 units.  Replaying that in
  real time would make every test minutes long, so the adapter maps
  ``scale`` wall seconds onto one plan second (default 0.05: a 60-unit
  plan replays in three wall seconds).  ``now`` and ``schedule`` both
  live on the *plan* axis; only this module touches the wall axis.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from ..ports import Action, TimerHandle


def wall_epoch() -> float:
    """A fresh cluster epoch (wall seconds); supervisor use only."""
    return time.time()


def perf_ns() -> int:
    """Monotonic nanoseconds for the runtime's profiling counters.

    Profiling (codec time, frame accounting) is honest wall measurement
    and therefore must live behind this module's R3 allowlist like every
    other clock read; the counters it feeds stay outside deterministic
    payloads (the same contract ``repro.perf.timer`` keeps for the
    simulator side).
    """
    return time.perf_counter_ns()


class _LoopTimer:
    """TimerHandle over ``loop.call_later``."""

    def __init__(self, handle: asyncio.TimerHandle):
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class RuntimeClock:
    """The :class:`repro.ports.Clock` adapter for live asyncio processes."""

    def __init__(
        self,
        epoch: float,
        scale: float = 0.05,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ):
        if scale <= 0:
            raise ValueError("time scale must be positive")
        self.epoch = epoch
        self.scale = scale
        self._loop = loop

    def _event_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    @property
    def now(self) -> float:
        """Plan-axis seconds since the shared cluster epoch."""
        return (time.time() - self.epoch) / self.scale

    def schedule(self, delay: float, action: Action) -> TimerHandle:
        """Run ``action`` after ``delay`` plan-axis seconds."""
        wall_delay = max(0.0, delay) * self.scale
        handle = self._event_loop().call_later(wall_delay, action)
        return _LoopTimer(handle)

    def to_wall(self, plan_delay: float) -> float:
        """Convert a plan-axis duration to wall seconds (supervisor
        timers for fault schedules use this)."""
        return plan_delay * self.scale
