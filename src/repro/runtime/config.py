"""Cluster and node specs: the configuration that crosses process lines.

A :class:`ClusterSpec` describes one deployment — node count, the TCP
port of every node, the shared epoch and time scale, the seed, gossip
knobs, where history files go, and (optionally) the ``FaultPlan`` to
replay.  The supervisor builds one, then hands each spawned process a
:class:`NodeSpec` (= the cluster spec + that node's id and incarnation
number) as a JSON argument; the node process reconstructs everything it
needs from that single value, so there is no other configuration
channel to drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..chaos.faults import FaultPlan

#: txid packing moduli (see NodeSpec.txid): enough for any cluster this
#: repo will ever boot, small enough to keep txids readable ints.
MAX_NODES = 64
MAX_INCARNATIONS = 256


@dataclass(frozen=True)
class ClusterSpec:
    """One runtime deployment, JSON-serializable."""

    n_nodes: int
    ports: Tuple[int, ...]
    epoch: float
    host: str = "127.0.0.1"
    seed: int = 0
    scale: float = 0.05
    anti_entropy_interval: float = 5.0
    fanout: int = 1
    capacity: int = 100
    history_dir: Optional[str] = None
    plan_json: Optional[str] = None
    #: write-side coalescing: at most this many payloads per wire frame.
    max_batch: int = 64
    #: wall seconds of extra coalescing after a frame's first payload
    #: (0 = greedy flush: no added latency, batches form under load).
    flush_interval: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "ports", tuple(self.ports))
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.n_nodes > MAX_NODES:
            raise ValueError(f"cluster larger than MAX_NODES={MAX_NODES}")
        if len(self.ports) != self.n_nodes:
            raise ValueError("need exactly one port per node")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(range(self.n_nodes))

    def address(self, node_id: int) -> Tuple[str, int]:
        return (self.host, self.ports[node_id])

    def plan(self) -> Optional[FaultPlan]:
        if self.plan_json is None:
            return None
        return FaultPlan.from_json(self.plan_json)

    def to_json(self) -> str:
        data = {
            "n_nodes": self.n_nodes,
            "ports": list(self.ports),
            "epoch": self.epoch,
            "host": self.host,
            "seed": self.seed,
            "scale": self.scale,
            "anti_entropy_interval": self.anti_entropy_interval,
            "fanout": self.fanout,
            "capacity": self.capacity,
            "history_dir": self.history_dir,
            "plan_json": self.plan_json,
            "max_batch": self.max_batch,
            "flush_interval": self.flush_interval,
        }
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        data = json.loads(text)
        data["ports"] = tuple(data["ports"])
        return cls(**data)


@dataclass(frozen=True)
class NodeSpec:
    """What one node process needs to come up: the cluster + its place
    in it.  ``incarnation`` counts respawns of this node id; it is
    folded into txids so a respawned process (whose local sequence
    restarts at zero) can never reissue a txid its previous life used.
    """

    cluster: ClusterSpec
    node_id: int
    incarnation: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.node_id < self.cluster.n_nodes:
            raise ValueError(f"node id {self.node_id} out of range")
        if not 0 <= self.incarnation < MAX_INCARNATIONS:
            raise ValueError("too many respawns of one node id")

    def txid(self, local_seq: int) -> int:
        """A globally unique txid with no central counter: unique per
        (node, incarnation, sequence), monotone in the sequence."""
        return (
            (local_seq * MAX_INCARNATIONS + self.incarnation) * MAX_NODES
            + self.node_id
        )

    def to_json(self) -> str:
        return json.dumps({
            "cluster": json.loads(self.cluster.to_json()),
            "node_id": self.node_id,
            "incarnation": self.incarnation,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NodeSpec":
        data = json.loads(text)
        return cls(
            cluster=ClusterSpec.from_json(json.dumps(data["cluster"])),
            node_id=data["node_id"],
            incarnation=data["incarnation"],
        )
