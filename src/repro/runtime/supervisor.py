"""Spawn, monitor, kill and respawn the node processes of one cluster.

The supervisor is the runtime's counterpart of the simulator's driver
loop: it owns the :class:`~repro.runtime.config.ClusterSpec`, boots one
``python -m repro.runtime.node`` process per node, and replays the crash
half of a :class:`~repro.chaos.faults.FaultPlan` — a ``Crash`` fault is
a real ``SIGKILL`` at its onset and a respawn (fresh process, empty
state, bumped incarnation) at its recovery time, after which the node
catches up through anti-entropy like any recovering replica.  Clock
skews are delivered as ``skew`` control requests.  Partitions and
message faults need no supervisor involvement: every node process
evaluates those itself at its socket layer, on the shared plan clock.

Crash/recover trace events are written supervisor-side
(``events-supervisor.jsonl``): a SIGKILLed process cannot log its own
death, and the trace oracle needs both edges of the window.
"""

from __future__ import annotations

import asyncio
import os
import socket
import sys
from typing import Dict, List, Optional, Tuple

from ..chaos.faults import FaultPlan
from .client import NodeClient, NodeUnreachable
from .clock import RuntimeClock, wall_epoch
from .config import ClusterSpec, NodeSpec
from .history import HistoryWriter, events_path


def free_ports(n: int, host: str = "127.0.0.1") -> Tuple[int, ...]:
    """``n`` currently free TCP ports (bind-then-release; the usual
    small race is acceptable for local test clusters)."""
    sockets = []
    try:
        for _ in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return tuple(sock.getsockname()[1] for sock in sockets)
    finally:
        for sock in sockets:
            sock.close()


def make_spec(
    n_nodes: int = 3,
    seed: int = 0,
    scale: float = 0.05,
    anti_entropy_interval: float = 5.0,
    capacity: int = 100,
    history_dir: Optional[str] = None,
    plan: Optional[FaultPlan] = None,
    host: str = "127.0.0.1",
) -> ClusterSpec:
    """A ready-to-boot spec: fresh ports, fresh epoch."""
    return ClusterSpec(
        n_nodes=n_nodes,
        ports=free_ports(n_nodes, host),
        epoch=wall_epoch(),
        host=host,
        seed=seed,
        scale=scale,
        anti_entropy_interval=anti_entropy_interval,
        capacity=capacity,
        history_dir=history_dir,
        plan_json=plan.to_json() if plan is not None else None,
    )


class ClusterSupervisor:
    """Owns the node processes of one live cluster."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self.clock = RuntimeClock(spec.epoch, spec.scale)
        self._procs: Dict[int, asyncio.subprocess.Process] = {}
        self._incarnations: Dict[int, int] = {}
        self.history: Optional[HistoryWriter] = None
        if spec.history_dir is not None:
            self.history = HistoryWriter(
                events_path(spec.history_dir, "supervisor")
            )

    def _trace(self, kind: str, node: int, **detail) -> None:
        if self.history is not None:
            self.history.record(self.clock.now, kind, node, **detail)

    # -- lifecycle ---------------------------------------------------------

    async def spawn(self, node_id: int, ready_timeout: float = 15.0) -> None:
        """Boot one node process and wait for its readiness line."""
        if node_id in self._procs:
            raise RuntimeError(f"node {node_id} already running")
        incarnation = self._incarnations.get(node_id, -1) + 1
        self._incarnations[node_id] = incarnation
        node_spec = NodeSpec(
            cluster=self.spec, node_id=node_id, incarnation=incarnation
        )
        env = dict(os.environ)
        proc = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.runtime.node",
            "--spec", node_spec.to_json(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=env,
        )
        self._procs[node_id] = proc
        line = await asyncio.wait_for(
            proc.stdout.readline(), ready_timeout
        )
        if not line.startswith(b"ready"):
            stderr = await proc.stderr.read()
            raise RuntimeError(
                f"node {node_id} failed to come up: "
                f"{line!r} / {stderr.decode(errors='replace')[-2000:]}"
            )

    async def start(self) -> None:
        for node_id in self.spec.node_ids:
            await self.spawn(node_id)

    def alive(self, node_id: int) -> bool:
        proc = self._procs.get(node_id)
        return proc is not None and proc.returncode is None

    def kill(self, node_id: int) -> None:
        """SIGKILL a node process: the live form of a ``Crash`` onset.

        The process gets no chance to flush, close, or say goodbye —
        everything volatile is genuinely gone.
        """
        proc = self._procs.pop(node_id, None)
        if proc is None or proc.returncode is not None:
            raise RuntimeError(f"node {node_id} is not running")
        proc.kill()
        self._trace("crash", node_id)

    async def respawn(self, node_id: int) -> None:
        """Bring a killed node back (fresh state, bumped incarnation)."""
        await self.spawn(node_id)
        self._trace("recover", node_id)

    async def stop(self) -> None:
        """Graceful shutdown: ask politely, then terminate stragglers."""
        for node_id in list(self._procs):
            client = NodeClient(*self.spec.address(node_id), timeout=2.0)
            try:
                await client.request("stop")
            except NodeUnreachable:
                pass
            finally:
                client.close()
        for node_id, proc in list(self._procs.items()):
            try:
                await asyncio.wait_for(proc.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                proc.terminate()
                await proc.wait()
            del self._procs[node_id]
        if self.history is not None:
            self.history.close()

    # -- fault replay ------------------------------------------------------

    async def replay_plan(self) -> None:
        """Replay the spec's crash + skew faults on the plan clock.

        Runs until the last fault's horizon; message/partition faults
        replay inside the node processes concurrently.  Call this while
        a workload runs (it only sleeps between fault times).
        """
        plan = self.spec.plan()
        if plan is None:
            return
        moments: List[Tuple[float, str, object]] = []
        for fault in plan.faults:
            kind = type(fault).KIND
            if kind == "crash":
                moments.append((fault.at, "kill", fault.node))
                moments.append((fault.recover_at, "respawn", fault.node))
            elif kind == "clock_skew":
                moments.append((fault.at, "skew", (fault.node, fault.drift)))
        moments.sort(key=lambda m: m[0])
        for at, action, arg in moments:
            delay = self.clock.to_wall(at - self.clock.now)
            if delay > 0:
                await asyncio.sleep(delay)
            if action == "kill":
                if self.alive(arg):
                    self.kill(arg)
            elif action == "respawn":
                if not self.alive(arg):
                    await self.respawn(arg)
            elif action == "skew":
                node_id, drift = arg
                client = NodeClient(
                    *self.spec.address(node_id), timeout=2.0
                )
                try:
                    await client.request("skew", drift)
                    self._trace(
                        "fault_inject", node_id,
                        fault="clock_skew", info=f"drift={drift}",
                    )
                except NodeUnreachable:
                    pass  # skewing a dead node is a no-op, as in the sim
                finally:
                    client.close()
