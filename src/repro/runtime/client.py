"""The client API: talk to a live cluster, record what you saw.

:class:`ClusterClient` opens one connection per node and exposes the
request vocabulary of :mod:`repro.runtime.node` as async methods.  Every
successful ``submit`` is also recorded to the client's own history file
(``events-client.jsonl``) as an ``initiate`` trace event — the
*client-visible* history, in the exact :data:`EVENT_SCHEMAS` vocabulary,
which is what the offline oracles consume together with the node-side
streams.  A runtime run is thereby checkable from two independent
vantage points: what the nodes logged and what the client observed.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional, Tuple

from ..core.transaction import Transaction
from .clock import RuntimeClock
from .config import ClusterSpec
from .history import HistoryWriter, events_path
from .node import REQ, RES
from .wire import FrameSplitter, encode_frame


class RequestError(RuntimeError):
    """The node answered, but with a failure."""


class NodeUnreachable(ConnectionError):
    """The node did not answer (dead, partitioned, or not yet up)."""


class NodeClient:
    """One node's request channel (lazy connect, auto-reconnect)."""

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._splitter = FrameSplitter()
        self._ids = itertools.count()

    async def _connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        self._splitter = FrameSplitter()

    def _disconnect(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._reader = None
        self._writer = None

    async def request(self, op: str, *args: object) -> object:
        request_id = next(self._ids)
        try:
            await self._connect()
            self._writer.write(
                encode_frame((REQ, request_id, op, tuple(args)))
            )
            await self._writer.drain()
            while True:
                chunk = await asyncio.wait_for(
                    self._reader.read(65536), self.timeout
                )
                if not chunk:
                    raise ConnectionError("connection closed mid-request")
                for frame in self._splitter.feed(chunk):
                    if (
                        isinstance(frame, tuple) and len(frame) == 4
                        and frame[0] == RES and frame[1] == request_id
                    ):
                        _, _, ok, value = frame
                        if not ok:
                            raise RequestError(str(value))
                        return value
        except (OSError, asyncio.TimeoutError, ConnectionError) as exc:
            self._disconnect()
            raise NodeUnreachable(
                f"{self.host}:{self.port}: {exc}"
            ) from exc

    def close(self) -> None:
        self._disconnect()


class ClusterClient:
    """The whole cluster's client API + client-visible history."""

    def __init__(
        self,
        spec: ClusterSpec,
        record_history: bool = True,
        timeout: float = 5.0,
    ):
        self.spec = spec
        self.clock = RuntimeClock(spec.epoch, spec.scale)
        self._nodes: Dict[int, NodeClient] = {
            node_id: NodeClient(*spec.address(node_id), timeout=timeout)
            for node_id in spec.node_ids
        }
        self.history: Optional[HistoryWriter] = None
        if record_history and spec.history_dir is not None:
            self.history = HistoryWriter(
                events_path(spec.history_dir, "client")
            )
        self.submitted = 0
        self.rejected = 0

    async def ping(self, node_id: int) -> Tuple[int, int]:
        return await self._nodes[node_id].request("ping")

    async def submit(
        self, node_id: int, transaction: Transaction
    ) -> int:
        """Initiate ``transaction`` at ``node_id``; returns its txid.

        Recorded client-side as the ``initiate`` event the node also
        logged — the two streams must agree, and the offline trace
        oracle sees both.
        """
        try:
            txid, seen = await self._nodes[node_id].request(
                "submit", transaction
            )
        except NodeUnreachable:
            self.rejected += 1
            raise
        self.submitted += 1
        if self.history is not None:
            self.history.record(
                self.clock.now, "initiate", node_id,
                txid=txid, family=transaction.name, seen=seen,
            )
        return txid

    async def get(self, node_id: int) -> Tuple[tuple, tuple]:
        """The node's current (assigned, waiting) lists."""
        return await self._nodes[node_id].request("get")

    async def status(self, node_id: int) -> tuple:
        return await self._nodes[node_id].request("status")

    async def snapshot(self, node_id: int) -> tuple:
        """The node's full log as live UpdateRecord objects."""
        return await self._nodes[node_id].request("snapshot")

    async def skew(self, node_id: int, drift: int) -> int:
        return await self._nodes[node_id].request("skew", drift)

    async def dump(self, node_id: int) -> int:
        """Ask the node to write its records-<id>.jsonl snapshot."""
        return await self._nodes[node_id].request("dump")

    async def stop(self, node_id: int) -> bool:
        return await self._nodes[node_id].request("stop")

    async def known_txids(self, node_id: int) -> Tuple[int, ...]:
        _, _, _, txids = await self.status(node_id)
        return txids

    async def converged(self) -> bool:
        """Do all reachable-right-now nodes hold the same txid set?"""
        seen = set()
        for node_id in self.spec.node_ids:
            try:
                seen.add(await self.known_txids(node_id))
            except NodeUnreachable:
                return False
        return len(seen) == 1

    def close(self) -> None:
        for node in self._nodes.values():
            node.close()
        if self.history is not None:
            self.history.close()
