"""The client API: talk to a live cluster, record what you saw.

:class:`ClusterClient` opens one connection per node and exposes the
request vocabulary of :mod:`repro.runtime.node` as async methods.  Every
successful ``submit`` is also recorded to the client's own history file
(``events-client.jsonl``) as an ``initiate`` trace event — the
*client-visible* history, in the exact :data:`EVENT_SCHEMAS` vocabulary,
which is what the offline oracles consume together with the node-side
streams.  A runtime run is thereby checkable from two independent
vantage points: what the nodes logged and what the client observed.

The hot path is pipelined.  :class:`NodeClient` demultiplexes: a
background reader task resolves responses to futures keyed by request
id, so many requests ride one connection concurrently and complete out
of order.  ``post_many`` writes a whole burst of requests as a single
coalesced ``Batch`` frame; :meth:`ClusterClient.submit_many` keeps a
configurable window of submits in flight.  Pipelining changes *when*
replies arrive, never *what* the replicas decide — the parity suite
(``tests/runtime/test_pipeline_parity.py``) holds the serial and
pipelined client to identical converged states.

Reply loss is survivable without double-submission: every submit
carries a client idempotency token, and on a connection error the
client reconnects once and *requeries* the token (the node caches
recent submit results) before it would ever resubmit.
"""

from __future__ import annotations

import asyncio
import itertools
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.transaction import Transaction
from .clock import RuntimeClock
from .config import ClusterSpec
from .history import HistoryWriter, events_path
from .node import REQ, RES
from .profile import RuntimeProfile
from .wire import (
    FrameSplitter,
    batch_frame_from_texts,
    encode,
    frame_from_text,
)


class RequestError(RuntimeError):
    """The node answered, but with a failure."""


class NodeUnreachable(ConnectionError):
    """The node did not answer (dead, partitioned, or not yet up)."""


class NodeClient:
    """One node's request channel (lazy connect, auto-reconnect).

    Responses demultiplex by request id: a background reader task
    resolves each ``("res", id, ok, value)`` frame against the pending
    future it answers, so callers may pipeline requests freely and
    completions arrive in whatever order the node produced them.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 5.0,
        profile: Optional[RuntimeProfile] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.profile = profile if profile is not None else RuntimeProfile()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count()

    # -- connection lifecycle ---------------------------------------------

    async def _connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        splitter = FrameSplitter()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(self._reader, splitter)
        )

    async def _read_loop(
        self, reader: asyncio.StreamReader, splitter: FrameSplitter
    ) -> None:
        reason = "connection closed"
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for frame in splitter.feed(chunk):
                    self._resolve(frame)
        except (OSError, ValueError) as exc:
            reason = str(exc) or type(exc).__name__
        finally:
            self.profile.absorb_splitter(splitter)
            if self._reader_task is asyncio.current_task():
                # the connection died under us (not a local disconnect):
                # reset state and fail whatever was still in flight.
                self._reader_task = None
                self._disconnect(reason)

    def _resolve(self, frame: object) -> None:
        if not (
            isinstance(frame, tuple) and len(frame) == 4
            and frame[0] == RES
        ):
            return
        future = self._pending.pop(frame[1], None)
        if future is None or future.done():
            return
        _, _, ok, value = frame
        if ok:
            future.set_result(value)
        else:
            future.set_exception(RequestError(str(value)))

    def _fail_pending(self, reason: str) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    NodeUnreachable(f"{self.host}:{self.port}: {reason}")
                )

    def _disconnect(self, reason: str = "disconnected") -> None:
        task, self._reader_task = self._reader_task, None
        if task is not None:
            task.cancel()
        if self._writer is not None:
            self._writer.close()
        self._reader = None
        self._writer = None
        self._fail_pending(reason)

    # -- the pipelined request path ---------------------------------------

    async def post_many(
        self, calls: Sequence[Tuple[str, tuple]]
    ) -> List[asyncio.Future]:
        """Write ``calls`` as one coalesced frame; return their futures.

        The futures resolve out of order as responses arrive — callers
        own the waiting policy (``request_many`` gathers in call order,
        ``ClusterClient.submit_many`` drains a sliding window).
        """
        calls = tuple(calls)
        if not calls:
            return []
        futures: List[asyncio.Future] = []
        try:
            await self._connect()
            loop = asyncio.get_running_loop()
            texts: List[str] = []
            for op, args in calls:
                request_id = next(self._ids)
                future = loop.create_future()
                self._pending[request_id] = future
                futures.append(future)
                texts.append(encode((REQ, request_id, op, tuple(args))))
            if len(texts) == 1:
                frame = frame_from_text(texts[0])
            else:
                frame = batch_frame_from_texts(texts)
            self._writer.write(frame)
            self.profile.wrote_frame(len(frame), len(texts))
            self.profile.inflight(len(self._pending))
            await self._writer.drain()
        except (OSError, asyncio.TimeoutError, ConnectionError) as exc:
            self._disconnect(str(exc) or type(exc).__name__)
            for future in futures:
                if future.done() and not future.cancelled():
                    future.exception()  # mark retrieved
            raise NodeUnreachable(
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        return futures

    async def request(self, op: str, *args: object) -> object:
        (future,) = await self.post_many(((op, tuple(args)),))
        try:
            return await asyncio.wait_for(future, self.timeout)
        except RequestError:
            raise
        except (OSError, asyncio.TimeoutError, ConnectionError) as exc:
            self._disconnect(str(exc) or type(exc).__name__)
            raise NodeUnreachable(
                f"{self.host}:{self.port}: {exc}"
            ) from exc

    async def request_many(
        self, calls: Sequence[Tuple[str, tuple]]
    ) -> List[object]:
        """Pipeline ``calls`` on one coalesced write; results come back
        in call order even though completion itself may not be."""
        futures = await self.post_many(calls)
        try:
            results = await asyncio.wait_for(
                asyncio.gather(*futures, return_exceptions=True),
                self.timeout,
            )
        except asyncio.TimeoutError as exc:
            self._disconnect("request timed out")
            raise NodeUnreachable(
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        for value in results:
            if isinstance(value, RequestError):
                raise value
            if isinstance(value, BaseException):
                self._disconnect(str(value) or type(value).__name__)
                raise NodeUnreachable(
                    f"{self.host}:{self.port}: {value}"
                ) from value
        return list(results)

    def close(self) -> None:
        self._disconnect("client closed")


class ClusterClient:
    """The whole cluster's client API + client-visible history."""

    def __init__(
        self,
        spec: ClusterSpec,
        record_history: bool = True,
        timeout: float = 5.0,
    ):
        self.spec = spec
        self.clock = RuntimeClock(spec.epoch, spec.scale)
        self.profile = RuntimeProfile()
        self._nodes: Dict[int, NodeClient] = {
            node_id: NodeClient(
                *spec.address(node_id), timeout=timeout,
                profile=self.profile,
            )
            for node_id in spec.node_ids
        }
        self.history: Optional[HistoryWriter] = None
        if record_history and spec.history_dir is not None:
            self.history = HistoryWriter(
                events_path(spec.history_dir, "client")
            )
        self.submitted = 0
        self.rejected = 0
        # idempotency tokens: unique per client instance, no entropy
        # source needed (and none allowed outside the clock adapter).
        self._token_prefix = f"{os.getpid()}.{id(self):x}"
        self._token_seq = itertools.count()

    def _next_token(self) -> str:
        return f"{self._token_prefix}.{next(self._token_seq)}"

    async def ping(self, node_id: int) -> Tuple[int, int]:
        return await self._nodes[node_id].request("ping")

    # -- submission --------------------------------------------------------

    def _record_initiate(
        self, node_id: int, transaction: Transaction, txid: int, seen: int
    ) -> None:
        self.submitted += 1
        if self.history is not None:
            self.history.record(
                self.clock.now, "initiate", node_id,
                txid=txid, family=transaction.name, seen=seen,
            )

    async def _submit_attempts(
        self, node: NodeClient, transaction: Transaction, token: str
    ) -> Tuple[int, int]:
        try:
            return await node.request("submit", transaction, token)
        except NodeUnreachable:
            # The reply may have been lost *after* the node decided:
            # reconnect once and requery the idempotency token before
            # ever resubmitting, so a retry can never double-initiate.
            cached = await node.request("query", token)
            if cached is not None:
                return tuple(cached)
            return await node.request("submit", transaction, token)

    async def submit(
        self,
        node_id: int,
        transaction: Transaction,
        deadline: Optional[float] = None,
    ) -> int:
        """Initiate ``transaction`` at ``node_id``; returns its txid.

        ``deadline`` caps the whole attempt (first try + the single
        reconnect-and-requery retry) in wall seconds; ``None`` falls
        back to the per-request timeout.  Recorded client-side as the
        ``initiate`` event the node also logged — the two streams must
        agree, and the offline trace oracle sees both.
        """
        node = self._nodes[node_id]
        token = self._next_token()
        try:
            attempt = self._submit_attempts(node, transaction, token)
            if deadline is not None:
                txid, seen = await asyncio.wait_for(attempt, deadline)
            else:
                txid, seen = await attempt
        except (NodeUnreachable, asyncio.TimeoutError) as exc:
            self.rejected += 1
            if isinstance(exc, asyncio.TimeoutError):
                raise NodeUnreachable(
                    f"node {node_id}: submit deadline exceeded"
                ) from exc
            raise
        self._record_initiate(node_id, transaction, txid, seen)
        return txid

    async def submit_many(
        self,
        node_id: int,
        transactions: Sequence[Transaction],
        window: int = 32,
    ) -> List[Optional[int]]:
        """Pipeline submits at one node, at most ``window`` in flight.

        Requests go out in coalesced bursts (one ``Batch`` frame per
        refill); completions resolve out of order and each one frees a
        window slot immediately.  Returns txids in input order, with
        ``None`` where a submit was rejected even after its single
        requery-by-token retry.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        node = self._nodes[node_id]
        transactions = list(transactions)
        n = len(transactions)
        txids: List[Optional[int]] = [None] * n
        pending: Dict[asyncio.Future, Tuple[int, str]] = {}
        idx = 0
        while idx < n or pending:
            burst: List[Tuple[str, tuple]] = []
            meta: List[Tuple[int, str]] = []
            while idx < n and len(pending) + len(burst) < window:
                token = self._next_token()
                burst.append(("submit", (transactions[idx], token)))
                meta.append((idx, token))
                idx += 1
            if burst:
                try:
                    futures = await node.post_many(burst)
                except NodeUnreachable:
                    self.rejected += len(burst)
                    continue
                pending.update(zip(futures, meta))
            if not pending:
                continue
            done, _ = await asyncio.wait(
                set(pending), return_when=asyncio.FIRST_COMPLETED
            )
            for future in done:
                i, token = pending.pop(future)
                value: Optional[tuple] = None
                if future.cancelled():
                    pass
                elif future.exception() is None:
                    value = future.result()
                elif isinstance(future.exception(), ConnectionError):
                    # lost reply: the one requery-by-token retry.
                    try:
                        value = await node.request("query", token)
                    except (NodeUnreachable, RequestError):
                        value = None
                if value is None:
                    self.rejected += 1
                    continue
                txid, seen = value
                txids[i] = txid
                self._record_initiate(
                    node_id, transactions[i], txid, seen
                )
        return txids

    # -- reads and control -------------------------------------------------

    async def get(self, node_id: int) -> Tuple[tuple, tuple]:
        """The node's current (assigned, waiting) lists."""
        return await self._nodes[node_id].request("get")

    async def status(self, node_id: int) -> tuple:
        return await self._nodes[node_id].request("status")

    async def node_profile(self, node_id: int) -> Dict[str, int]:
        """The node's live hot-path counters (status element five)."""
        status = await self.status(node_id)
        return status[4]

    async def snapshot(self, node_id: int) -> tuple:
        """The node's full log as live UpdateRecord objects."""
        return await self._nodes[node_id].request("snapshot")

    async def skew(self, node_id: int, drift: int) -> int:
        return await self._nodes[node_id].request("skew", drift)

    async def dump(self, node_id: int) -> int:
        """Ask the node to write its records-<id>.jsonl snapshot."""
        return await self._nodes[node_id].request("dump")

    async def stop(self, node_id: int) -> bool:
        return await self._nodes[node_id].request("stop")

    async def known_txids(self, node_id: int) -> Tuple[int, ...]:
        status = await self.status(node_id)
        return status[3]

    async def converged(self) -> bool:
        """Do all reachable-right-now nodes hold the same txid set?"""
        seen = set()
        for node_id in self.spec.node_ids:
            try:
                seen.add(await self.known_txids(node_id))
            except NodeUnreachable:
                return False
        return len(seen) == 1

    def close(self) -> None:
        for node in self._nodes.values():
            node.close()
        if self.history is not None:
            self.history.close()
