"""The real cluster runtime: the protocol core on live asyncio processes.

Everything under :mod:`repro.runtime` is an *adapter* of the port
interfaces in :mod:`repro.ports`.  The protocol state machines hosted
here — :class:`~repro.gossip.service.GossipService`,
:class:`~repro.gossip.protocol.ExchangeEngine`,
:class:`~repro.shard.sync.SyncManager`,
:class:`~repro.shard.node.ShardNode` — are byte-for-byte the same
objects the deterministic simulator drives; this package merely supplies
them real time (:mod:`.clock`), real sockets (:mod:`.transport`), real
processes (:mod:`.supervisor`) and real clients (:mod:`.client`).

Layout:

* :mod:`.wire` — tagged JSON codec + length-prefixed framing for every
  payload the protocols put on a transport;
* :mod:`.clock` — the live Clock adapter (scaled wall clock over a
  shared cluster epoch);
* :mod:`.loopback` — deterministic in-process asyncio adapters
  (VirtualClock + LoopbackNet) used by the transcript-parity tests;
* :mod:`.config` — the cluster/node spec that crosses the process
  boundary as JSON;
* :mod:`.faults` — the chaos seam: replaying a ``FaultPlan`` against
  sockets and processes instead of the simulator;
* :mod:`.transport` — the asyncio TCP Transport adapter;
* :mod:`.node` — one replica process: ShardNode + gossip + sync behind
  a TCP server, ``python -m repro.runtime.node``;
* :mod:`.history` — JSONL run histories (trace events in the
  ``sim/trace.py`` schema + wire-encoded log snapshots);
* :mod:`.client` — the client API (get/put/submit/control) with
  history recording;
* :mod:`.supervisor` — spawn/monitor/SIGKILL/respawn node processes;
* :mod:`.loadgen` — sustained request streams against a live cluster;
* :mod:`.demo` — the end-to-end smoke test,
  ``python -m repro.runtime.demo``.
"""

from .clock import RuntimeClock
from .config import ClusterSpec, NodeSpec
from .loopback import LoopbackNet, VirtualClock
from .wire import decode, encode, decode_frame, encode_frame

__all__ = [
    "ClusterSpec",
    "LoopbackNet",
    "NodeSpec",
    "RuntimeClock",
    "VirtualClock",
    "decode",
    "decode_frame",
    "encode",
    "encode_frame",
]
