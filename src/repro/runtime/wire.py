"""Tagged JSON wire codec + length-prefixed framing.

The simulator passes protocol payloads between nodes as live Python
objects; the runtime has to put the *same* payloads on a socket.  This
module maps every value the protocols exchange — gossip SYN/ACK/DELTA
and rumor tuples, sync pulls, update records, range digests — onto JSON
and back, such that ``decode(encode(x)) == x`` (object equality, not
just shape: :func:`repro.shard.history.extract_execution` re-derives
updates and compares them with ``==``, so a lossy codec would fail the
condition-(3) check, not just look ugly).

Encoding is by type tag: each non-scalar value becomes a single-key
object ``{"%tag": ...}``.  Transactions and updates serialize as
``(family name, params)`` and are rebuilt through a registry keyed by
the family ``name`` — the same identifier the trace schema and the
digest grouping already use.  The airline app's families are
pre-registered; other apps register theirs via
:func:`register_transaction` / :func:`register_update`.

Framing is 4-byte big-endian length + UTF-8 JSON, the classic
self-delimiting stream format; :class:`FrameSplitter` incrementally
splits a byte stream into decoded payloads.

**Batch frames.**  The hot-path cost of the runtime is per-frame, not
per-byte: one JSON object, one length header, one writer wake-up per
protocol payload.  A :class:`Batch` is a wire-level container — many
tagged payloads inside a *single* length-prefixed frame — that
amortizes all three.  ``FrameSplitter`` transparently expands batch
frames back into their constituent payloads (old single frames and new
batch frames interoperate on one stream); pass ``expand=False`` to see
the :class:`Batch` itself, which is how the transport keeps frame
boundaries for its one-frame-one-merge delivery batching.  Because
every payload's canonical JSON text is already known at send time,
:func:`batch_frame_from_texts` splices pre-encoded payloads into a
batch frame without re-encoding — the coalescing write buffer pays the
codec exactly once per payload.
"""

from __future__ import annotations

import json
import struct
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from ..apps.airline.transactions import Cancel, MoveDown, MoveUp, Request
from ..apps.airline.updates import (
    CancelUpdate,
    MoveDownUpdate,
    MoveUpUpdate,
    RequestUpdate,
)
from ..core.transaction import Transaction
from ..core.update import IDENTITY, Update
from ..gossip.digest import RangeDigest
from ..replica.log import UpdateRecord
from ..replica.timestamps import Timestamp

#: family name -> params-tuple constructor.
TransactionFactory = Callable[..., Transaction]
UpdateFactory = Callable[..., Update]

_TRANSACTIONS: Dict[str, TransactionFactory] = {}
_UPDATES: Dict[str, UpdateFactory] = {}


def register_transaction(name: str, factory: TransactionFactory) -> None:
    """Register a transaction family for decoding (idempotent only if
    re-registering the same factory)."""
    existing = _TRANSACTIONS.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(f"transaction family {name!r} already registered")
    _TRANSACTIONS[name] = factory


def register_update(name: str, factory: UpdateFactory) -> None:
    """Register an update family for decoding."""
    existing = _UPDATES.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(f"update family {name!r} already registered")
    _UPDATES[name] = factory


register_transaction(Request.name, Request)
register_transaction(Cancel.name, Cancel)
register_transaction(MoveUp.name, MoveUp)
register_transaction(MoveDown.name, MoveDown)
register_update(RequestUpdate.name, RequestUpdate)
register_update(CancelUpdate.name, CancelUpdate)
register_update(MoveUpUpdate.name, MoveUpUpdate)
register_update(MoveDownUpdate.name, MoveDownUpdate)
# the identity update is a singleton with no params.
register_update(IDENTITY.name, lambda: IDENTITY)


class Batch(tuple):
    """Many payloads travelling in one wire frame (see module docstring).

    A plain tuple subclass: equality, iteration and indexing all behave
    like the tuple of payloads it carries.  Encoded with its own tag so
    a receiver can tell one batch frame from a single tuple-valued
    payload.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({list(self)!r})"


# -- value codec ----------------------------------------------------------


def _enc(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Batch):
        return {"%b": [_enc(v) for v in value]}
    if isinstance(value, tuple):
        return {"%t": [_enc(v) for v in value]}
    if isinstance(value, list):
        return {"%l": [_enc(v) for v in value]}
    if isinstance(value, frozenset):
        # wire sets are txid sets: sort for a canonical byte form.
        return {"%fs": sorted(_enc(v) for v in value)}
    if isinstance(value, dict):
        # str-keyed mappings (profile counters); wrapped so the decoder
        # can tell a payload dict from a codec tag object.
        if any(not isinstance(k, str) for k in value):
            raise TypeError("wire dicts must have str keys")
        return {"%d": [[k, _enc(v)] for k, v in sorted(value.items())]}
    if isinstance(value, Timestamp):
        return {"%ts": [value.counter, value.node_id]}
    if isinstance(value, RangeDigest):
        return {"%dg": [value.width, _enc(value.cells), _enc(value.tail)]}
    if isinstance(value, UpdateRecord):
        return {"%ur": [
            _enc(value.ts),
            value.txid,
            _enc(value.transaction),
            _enc(value.update),
            value.origin,
            value.real_time,
            _enc(value.seen_txids),
        ]}
    if isinstance(value, Transaction):
        return {"%tx": [value.name, [_enc(p) for p in value.params]]}
    if isinstance(value, Update):
        return {"%up": [value.name, [_enc(p) for p in value.params]]}
    raise TypeError(f"no wire encoding for {type(value).__name__}: {value!r}")


def _dec(value: object) -> object:
    if not isinstance(value, dict):
        return value
    if len(value) != 1:
        raise ValueError(f"malformed wire object (want one tag): {value!r}")
    (tag, body), = value.items()
    if tag == "%t":
        return tuple(_dec(v) for v in body)
    if tag == "%b":
        return Batch(_dec(v) for v in body)
    if tag == "%l":
        return [_dec(v) for v in body]
    if tag == "%fs":
        return frozenset(_dec(v) for v in body)
    if tag == "%d":
        return {k: _dec(v) for k, v in body}
    if tag == "%ts":
        return Timestamp(counter=body[0], node_id=body[1])
    if tag == "%dg":
        return RangeDigest(
            width=body[0], cells=_dec(body[1]), tail=_dec(body[2])
        )
    if tag == "%ur":
        return UpdateRecord(
            ts=_dec(body[0]),
            txid=body[1],
            transaction=_dec(body[2]),
            update=_dec(body[3]),
            origin=body[4],
            real_time=body[5],
            seen_txids=_dec(body[6]),
        )
    if tag == "%tx":
        name, params = body
        factory = _TRANSACTIONS.get(name)
        if factory is None:
            raise ValueError(f"unknown transaction family {name!r}")
        return factory(*(_dec(p) for p in params))
    if tag == "%up":
        name, params = body
        factory = _UPDATES.get(name)
        if factory is None:
            raise ValueError(f"unknown update family {name!r}")
        return factory(*(_dec(p) for p in params))
    raise ValueError(f"unknown wire tag {tag!r}")


def encode(payload: object) -> str:
    """One payload -> canonical JSON text."""
    return json.dumps(_enc(payload), separators=(",", ":"), sort_keys=True)


def decode(text: str) -> object:
    """JSON text -> the payload, with object equality to the original."""
    return _dec(json.loads(text))


# -- framing --------------------------------------------------------------

_HEADER = struct.Struct(">I")
#: sanity cap: no single protocol payload is anywhere near this large.
MAX_FRAME = 64 * 1024 * 1024


def encode_frame(payload: object) -> bytes:
    """One payload -> length-prefixed wire bytes."""
    body = encode(payload).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


def frame_from_text(text: str) -> bytes:
    """A pre-encoded payload (one :func:`encode` result) -> one frame."""
    body = text.encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


def batch_frame_from_texts(texts: Sequence[str]) -> bytes:
    """Splice pre-encoded payload texts into one ``Batch`` frame.

    Produces byte-identical output to ``encode_frame(Batch(payloads))``
    without re-walking the payload objects — the coalescing write
    buffer's fast path (each payload was already encoded when it was
    queued).
    """
    body = ('{"%b":[' + ",".join(texts) + "]}").encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


def decode_frame(data: bytes) -> Tuple[object, bytes]:
    """Split one complete frame off ``data``; raises if incomplete."""
    if len(data) < _HEADER.size:
        raise ValueError("incomplete frame header")
    (length,) = _HEADER.unpack_from(data)
    end = _HEADER.size + length
    if len(data) < end:
        raise ValueError("incomplete frame body")
    return decode(data[_HEADER.size:end].decode("utf-8")), data[end:]


class FrameSplitter:
    """Incremental frame splitter for a byte stream.

    Feed it chunks as they arrive; it yields decoded payloads as frames
    complete.  Tolerates arbitrary chunk boundaries (TCP guarantees
    nothing about them); a torn final frame simply stays buffered until
    (unless) its remaining bytes arrive.

    With ``expand=True`` (the default) a :class:`Batch` frame is
    transparently flattened: the splitter yields its payloads one by
    one, so batch-aware senders interoperate with batch-oblivious
    receivers.  ``expand=False`` yields the ``Batch`` object itself,
    preserving frame boundaries for receivers that batch work per frame.

    The splitter also keeps cheap wire counters — frames, bytes, batch
    frames, batched payloads — which the runtime's profiling hooks
    surface per node.
    """

    def __init__(self, expand: bool = True) -> None:
        self._buffer = b""
        self.expand = expand
        self.frames = 0
        self.bytes_in = 0
        self.batch_frames = 0
        self.batched_payloads = 0

    def feed(self, chunk: bytes) -> Iterator[object]:
        self._buffer += chunk
        self.bytes_in += len(chunk)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise ValueError(f"oversized frame: {length} bytes")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            body = self._buffer[_HEADER.size:end]
            self._buffer = self._buffer[end:]
            self.frames += 1
            payload = decode(body.decode("utf-8"))
            if isinstance(payload, Batch):
                self.batch_frames += 1
                self.batched_payloads += len(payload)
                if self.expand:
                    for item in payload:
                        yield item
                    continue
            yield payload


def split_frames(data: bytes) -> List[object]:
    """Decode a byte string holding zero or more complete frames."""
    splitter = FrameSplitter()
    out = list(splitter.feed(data))
    if splitter._buffer:
        raise ValueError(f"{len(splitter._buffer)} trailing bytes")
    return out
