"""Deterministic in-process asyncio adapters: VirtualClock + LoopbackNet.

The transcript-parity tests need a second, *independent* implementation
of the Clock/Transport ports that still replays deterministically: same
seeds in, same SYN/ACK/DELTA sequence out.  :class:`VirtualClock` is a
virtual-time event heap with the same ordering contract as
:class:`repro.sim.engine.Simulator` — ``(time, scheduling order)`` —
but pumped through a live asyncio event loop (:meth:`VirtualClock.run`
is a coroutine that yields to the loop between events, so handlers run
under asyncio exactly as they do under the TCP adapter).
:class:`LoopbackNet` delivers payloads between locally attached handlers
with a fixed per-hop delay and an optional drop hook (the chaos seam's
in-process stand-in for a cut cable).

If the protocol core is truly transport-agnostic, driving the same
:class:`~repro.gossip.service.GossipService` through *this* pair must
produce the identical protocol transcript the Simulator + Network pair
produces.  The Hypothesis test in
``tests/runtime/test_loopback_parity.py`` holds exactly that.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..ports import Action, Handler


class _VirtualTimer:
    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Action):
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def __lt__(self, other: "_VirtualTimer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        self.cancelled = True


class VirtualClock:
    """A virtual-time Clock adapter pumped through asyncio.

    Ordering contract matches the Simulator: events fire in ``(time,
    scheduling order)``; a handler scheduling at the current time runs
    after everything already queued for that time, never before.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[_VirtualTimer] = []
        self._counter = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, action: Action) -> _VirtualTimer:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        entry = _VirtualTimer(
            self.now + delay, next(self._counter), action
        )
        heapq.heappush(self._queue, entry)
        return entry

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    async def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Pump events in virtual-time order, yielding to the asyncio
        loop between events (handlers may spawn tasks; they run in the
        gaps, exactly as under a real clock)."""
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            entry = heapq.heappop(self._queue)
            self.now = entry.time
            entry.action()
            self.events_processed += 1
            processed += 1
            await asyncio.sleep(0)
        if until is not None and until > self.now:
            self.now = until

    def run_sync(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drive :meth:`run` to completion on a private event loop."""
        asyncio.run(self.run(until=until, max_events=max_events))


#: optional chaos hook: (now, src, dst, payload) -> drop this send?
DropFn = Callable[[float, int, int, object], bool]


class LoopbackNet:
    """In-memory Transport adapter over a :class:`VirtualClock`.

    Sends are delivered to the destination handler after ``delay``
    virtual seconds through the clock's heap — the same path the
    Simulator's Network uses, which is what makes the delivery order
    (and hence the protocol transcript) comparable event for event.
    """

    def __init__(
        self,
        clock: VirtualClock,
        delay: float = 1.0,
        drop: Optional[DropFn] = None,
    ):
        self.clock = clock
        self.delay = delay
        self.drop = drop
        self._handlers: Dict[int, Handler] = {}
        self.sent = 0
        self.dropped = 0
        self.delivered = 0

    def register(self, node_id: int, handler: Handler) -> None:
        self._handlers[node_id] = handler

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._handlers))

    def send(self, src: int, dst: int, payload: object) -> bool:
        if dst not in self._handlers:
            raise KeyError(f"unknown destination node {dst}")
        self.sent += 1
        if self.drop is not None and self.drop(
            self.clock.now, src, dst, payload
        ):
            self.dropped += 1
            return False
        handler = self._handlers[dst]

        def deliver() -> None:
            self.delivered += 1
            handler(src, payload)

        self.clock.schedule(self.delay, deliver)
        return True
