"""R6 — declared footprint conformance.

The key-level footprints in :mod:`repro.consistency.footprints` and the
commutativity certificates in :mod:`repro.certify` both abstract what an
``Update.apply`` body reads and writes — and both are only sound while
that abstraction matches the body.  ``FAMILY_FIELD_FOOTPRINTS`` declares
the ground truth per update family at state-attribute granularity; this
rule re-infers each family's footprint from its ``apply`` AST
(:func:`repro.lint.astutil.infer_update_footprint`) and flags any
disagreement, so an edit to an update body that changes what it touches
cannot land without the declared table (and everything derived from it)
being updated in the same change.

Classes whose ``name`` is not in the declared table are skipped — the
table only speaks for the families it lists.  A declared family whose
body no longer fits the recognized apply grammar is itself a finding:
an uncheckable body silently exempts the family from the contract.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from ..astutil import find_method, infer_update_footprint, subclasses_of
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

#: family name → (declared reads, declared writes).
FootprintTable = Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]


def _default_footprints() -> FootprintTable:
    from ...consistency.footprints import FAMILY_FIELD_FOOTPRINTS

    return FAMILY_FIELD_FOOTPRINTS


@register
class FootprintConformanceRule(Rule):
    rule_id = "R6"
    title = (
        "Update.apply bodies must match the declared family footprints "
        "(consistency.footprints.FAMILY_FIELD_FOOTPRINTS)"
    )

    def __init__(self, footprints: Optional[FootprintTable] = None):
        self.footprints = (
            footprints if footprints is not None else _default_footprints()
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for classdef in subclasses_of(ctx.tree, "Update"):
            family = self._family_name(ctx, classdef)
            if family is None or family not in self.footprints:
                continue
            method = find_method(classdef, "apply")
            if method is None:
                continue
            declared_reads, declared_writes = self.footprints[family]
            inferred = infer_update_footprint(method)
            if inferred is None:
                yield ctx.finding(
                    self.rule_id, method,
                    f"{classdef.name}.apply does not fit the recognized "
                    f"apply grammar, so it cannot be checked against the "
                    f"declared {family!r} footprint",
                )
                continue
            reads, writes = inferred
            if reads != tuple(declared_reads) or writes != tuple(
                declared_writes
            ):
                yield ctx.finding(
                    self.rule_id, method,
                    f"{classdef.name}.apply touches "
                    f"reads={sorted(reads)} writes={sorted(writes)}, but "
                    f"family {family!r} declares "
                    f"reads={sorted(declared_reads)} "
                    f"writes={sorted(declared_writes)} "
                    f"(consistency.footprints.FAMILY_FIELD_FOOTPRINTS)",
                )

    @staticmethod
    def _family_name(
        ctx: ModuleContext, classdef: ast.ClassDef
    ) -> Optional[str]:
        """The class's ``name = "..."`` family attribute, if static."""
        for stmt in classdef.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "name"
            ):
                return ctx.resolve_string(stmt.value)
        return None
