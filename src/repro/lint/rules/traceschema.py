"""R5 — trace-schema conformance.

The trace is the ground truth the correctness checks read — conditions
(1)–(4) are asserted over event streams, and the event vocabulary in
the ``repro.sim.trace`` docstring is documentation that used to drift
from the call sites (the gossip events were missing from it for a full
PR).  ``EVENT_SCHEMAS`` in :mod:`repro.sim.trace` now *declares* every
event kind and its detail keys; this rule pins every emit site to it:

* any ``_trace(kind, ...)`` or ``tracer.record(time, kind, ...)`` call
  whose kind is statically known (a string literal or a module-level
  string constant) must name a registered kind;
* its keyword detail keys must match the declared schema exactly —
  extras and omissions are both drift (a ``**detail`` splat downgrades
  the check to "no unknown keys", since the splatted names are not
  statically visible).

Forwarding wrappers (``def _trace(self, kind, ...)`` passing a variable
kind along) are skipped: only sites that *name* an event are checked.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..astutil import dotted_name
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register


def _default_schemas() -> Dict[str, FrozenSet[str]]:
    from ...sim.trace import EVENT_SCHEMAS

    return EVENT_SCHEMAS


@register
class TraceSchemaRule(Rule):
    rule_id = "R5"
    title = (
        "trace emit call sites must match the EVENT_SCHEMAS registry "
        "(kind and detail keys)"
    )

    def __init__(self, schemas: Optional[Dict[str, FrozenSet[str]]] = None):
        self.schemas = schemas if schemas is not None else _default_schemas()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind_arg = self._emit_kind_arg(node)
            if kind_arg is None:
                continue
            kind = ctx.resolve_string(kind_arg)
            if kind is None:
                continue  # forwarded variable kind: not an emit site
            yield from self._check_emit(ctx, node, kind)

    def _emit_kind_arg(self, call: ast.Call) -> Optional[ast.AST]:
        """The argument holding the event kind, if this call is a trace
        emit: ``_trace(kind, ...)`` or ``<...>tracer.record(time, kind,
        ...)``."""
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "_trace" and call.args:
            return call.args[0]
        if name == "record" and isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value) or ""
            if receiver.split(".")[-1].lower().endswith("tracer"):
                if len(call.args) >= 2:
                    return call.args[1]
        return None

    def _check_emit(
        self, ctx: ModuleContext, call: ast.Call, kind: str
    ) -> Iterator[Finding]:
        schema = self.schemas.get(kind)
        if schema is None:
            known = ", ".join(sorted(self.schemas))
            yield ctx.finding(
                self.rule_id, call,
                f"trace event kind {kind!r} is not declared in "
                f"sim.trace.EVENT_SCHEMAS (known kinds: {known})",
            )
            return
        keys, has_splat = self._detail_keys(call)
        extras = sorted(set(keys) - schema)
        if extras:
            yield ctx.finding(
                self.rule_id, call,
                f"trace event {kind!r} emits undeclared detail keys "
                f"{extras}; declared: {sorted(schema)}",
            )
        if not has_splat:
            missing = sorted(schema - set(keys))
            if missing:
                yield ctx.finding(
                    self.rule_id, call,
                    f"trace event {kind!r} omits declared detail keys "
                    f"{missing}; declared: {sorted(schema)}",
                )

    @staticmethod
    def _detail_keys(call: ast.Call) -> Tuple[List[str], bool]:
        keys: List[str] = []
        has_splat = False
        for kw in call.keywords:
            if kw.arg is None:
                has_splat = True
            elif kw.arg != "node":
                keys.append(kw.arg)
        return keys, has_splat
