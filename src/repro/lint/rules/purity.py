"""R1 — update purity.

The undo/redo merge replays an update arbitrarily many times against
different states (Section 2.2), so ``Update.apply`` must be a pure
state transformer: same input state, same output state, nothing else
touched.  The rule audits every ``apply`` override of a class that
nominally subclasses ``Update`` for

* external effects and hidden inputs (I/O, ``random``/``time``/
  ``os.urandom`` — see :mod:`._effects`);
* writes to ``self`` (an update that caches on itself produces
  different results on replay);
* in-place mutation of anything reached from the state parameter —
  replayed updates share structure with states still referenced by the
  log, so ``state.waiting.append(p)`` corrupts history even when the
  returned value looks right.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import (
    MutationFinder,
    find_method,
    positional_params,
    subclasses_of,
)
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register
from ._effects import effect_calls


def _purity_violations(
    ctx: ModuleContext,
    rule_id: str,
    method: ast.FunctionDef,
    owner: str,
    role: str,
) -> Iterator[Finding]:
    """The checks shared by ``apply`` and ``decide`` bodies."""
    params = positional_params(method)
    self_name = params[0] if params else "self"
    state_params = list(params[1:]) or list(params)

    for node, description in effect_calls(ctx, method.body):
        yield ctx.finding(
            rule_id,
            node,
            f"{owner}.{method.name} {description}; {role} must be a pure "
            f"function of the state",
        )

    finder = MutationFinder(state_params)
    for node, description in finder.run(method.body):
        yield ctx.finding(
            rule_id,
            node,
            f"{owner}.{method.name} {description}; {role} may not mutate "
            f"its input state",
        )

    self_finder = MutationFinder([self_name])
    for node, description in self_finder.run(method.body):
        yield ctx.finding(
            rule_id,
            node,
            f"{owner}.{method.name} {description}; {role} may not write "
            f"attributes on `{self_name}`",
        )


@register
class UpdatePurityRule(Rule):
    rule_id = "R1"
    title = (
        "Update.apply overrides must be pure state transformers "
        "(rerun under reordering, §2.2)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for classdef in subclasses_of(ctx.tree, "Update"):
            method = find_method(classdef, "apply")
            if method is None:
                continue
            yield from _purity_violations(
                ctx, self.rule_id, method, classdef.name, "an update part"
            )
