"""R2 — decision/update separation.

A transaction's decision part runs exactly once, at the origin node,
and owns every external action; the update part it returns is what the
system replays (Sections 1.2 and 2.3).  Two checks keep that split
honest:

* ``Transaction.decide`` must not mutate the observed state and may not
  perform effects directly — effects belong in the returned
  ``ExternalAction`` tuple, where the ledger records them exactly once.
  The same purity machinery as R1 applies: the decision must be a pure
  function of the state (condition (3)), because two nodes observing
  the same apparent state must decide identically.
* a ``Transaction.run`` override must still route through the
  decision's update part (``self.decide(...).update.apply(...)`` or a
  ``super().run(...)`` delegation).  A ``run`` that edits state
  directly bypasses the only code path the undo/redo merge can replay.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name, find_method, subclasses_of
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register
from .purity import _purity_violations


def _run_routes_through_update(method: ast.FunctionDef) -> bool:
    """Does the ``run`` body call ``decide`` and ``apply``, or delegate
    to ``super().run``?  Purely nominal, like the rest of the pass."""
    called = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                called.add(node.func.attr)
                receiver = node.func.value
                if (
                    node.func.attr == "run"
                    and isinstance(receiver, ast.Call)
                    and dotted_name(receiver.func) == "super"
                ):
                    return True
    return "decide" in called and "apply" in called


@register
class DecisionSeparationRule(Rule):
    rule_id = "R2"
    title = (
        "Transaction.decide must not mutate state; effects only via "
        "ExternalAction; run() routes through the update part"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for classdef in subclasses_of(ctx.tree, "Transaction"):
            decide = find_method(classdef, "decide")
            if decide is not None:
                yield from _purity_violations(
                    ctx, self.rule_id, decide, classdef.name,
                    "a decision part",
                )
            run = find_method(classdef, "run")
            if run is not None and not _run_routes_through_update(run):
                yield ctx.finding(
                    self.rule_id,
                    run,
                    f"{classdef.name}.run overrides Transaction.run "
                    "without routing through the update part (expected "
                    "`self.decide(...).update.apply(...)` or "
                    "`super().run(...)`)",
                )
