"""R4 — set-iteration-order hazards.

Python set iteration order depends on element hashes and insertion
history, and for strings it changes across interpreter runs with hash
randomization.  Feeding a set into anything order-sensitive therefore
silently breaks run reproducibility — the class of bug that makes two
"identical" simulations diverge.  The rule flags order-sensitive
consumption of *syntactically* set-typed expressions — set literals and
comprehensions, ``set(...)``/``frozenset(...)`` calls, ``| & - ^``
algebra, plus local names that are provably sets because every one of
their assignments in the scope is one (``seen = set()`` … ``seen |=
...``; see :func:`repro.lint.astutil.set_typed_names`):

* ``for`` statements and list/dict/generator comprehensions iterating a
  set (a generator feeding an order-insensitive reducer like
  ``sorted``/``sum``/``min``/``max``/``any``/``all``/``set`` is fine,
  as is a set comprehension — its result is again order-blind);
* materializing calls: ``list(s)``, ``tuple(s)``, ``enumerate(s)``,
  ``iter(s)``, ``next(iter(s))``, ``reversed(...)``, ``str.join``;
* randomized choice over a set: ``rng.choice(list(s))``,
  ``rng.sample(s, k)``, ``rng.shuffle(...)`` — nondeterministic even
  with a seeded generator, because the *population order* varies.

The fix is almost always ``sorted(s)`` (with an explicit ``key=`` when
elements are not naturally ordered).
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set, Tuple

from ..astutil import (
    call_func_name,
    is_set_expr,
    scope_statements,
    set_typed_names,
)
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

#: reducers whose result does not depend on iteration order.
ORDER_INSENSITIVE = frozenset({
    "sorted", "sum", "min", "max", "len", "any", "all", "set",
    "frozenset", "bool",
})
#: calls that materialize their argument's order.
ORDER_SENSITIVE_CALLS = frozenset({
    "list", "tuple", "enumerate", "iter", "next", "reversed",
})
#: seeded-Random methods whose outcome depends on population order.
RNG_METHODS = frozenset({"choice", "choices", "sample", "shuffle"})

_MESSAGE = (
    "iteration order of a set is nondeterministic across runs; wrap it "
    "in sorted(...) (with a key= if needed)"
)


@register
class IterationOrderRule(Rule):
    rule_id = "R4"
    title = (
        "order-sensitive consumption of set/frozenset values needs an "
        "enclosing sorted()"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allowed = self._order_blind_generators(ctx.tree)
        for body, shadowed in self._scopes(ctx.tree):
            set_names = set_typed_names(body) - shadowed
            for node in scope_statements(body):
                yield from self._check_node(ctx, node, set_names, allowed)

    @staticmethod
    def _scopes(
        tree: ast.Module,
    ) -> Iterator[Tuple[Sequence[ast.stmt], frozenset]]:
        """Each binding scope with the names its parameters shadow.

        Lambda bodies are not separate scopes here (they hold a single
        expression and cannot rebind names); their sinks are simply not
        tracked, a documented gap of the nominal analysis.
        """
        yield tree.body, frozenset()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                params = frozenset(
                    a.arg for a in (
                        args.posonlyargs + args.args + args.kwonlyargs
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else [])
                    )
                )
                yield node.body, params
            elif isinstance(node, ast.ClassDef):
                yield node.body, frozenset()

    def _check_node(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        set_names: frozenset,
        allowed: Set[int],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.For) and is_set_expr(node.iter, set_names):
            yield ctx.finding(
                self.rule_id, node.iter,
                f"for-loop over a set expression: {_MESSAGE}",
            )
        elif isinstance(node, (ast.ListComp, ast.DictComp,
                               ast.GeneratorExp)):
            if id(node) in allowed:
                return
            for gen in node.generators:
                if is_set_expr(gen.iter, set_names):
                    yield ctx.finding(
                        self.rule_id, gen.iter,
                        f"comprehension over a set expression: {_MESSAGE}",
                    )
        elif isinstance(node, ast.Call):
            yield from self._check_call(ctx, node, set_names)

    def _order_blind_generators(self, tree: ast.Module) -> Set[int]:
        """Generator expressions passed directly to an order-insensitive
        reducer — ``sorted(x for x in s)`` and friends are fine."""
        allowed: Set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and call_func_name(node) in ORDER_INSENSITIVE
            ):
                for arg in node.args:
                    if isinstance(arg, ast.GeneratorExp):
                        allowed.add(id(arg))
        return allowed

    def _check_call(
        self, ctx: ModuleContext, call: ast.Call,
        set_names: frozenset = frozenset(),
    ) -> Iterator[Finding]:
        name = call_func_name(call)
        if (
            name in ORDER_SENSITIVE_CALLS
            and call.args
            and is_set_expr(call.args[0], set_names)
        ):
            yield ctx.finding(
                self.rule_id, call,
                f"`{name}()` materializes a set's order: {_MESSAGE}",
            )
            return
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in RNG_METHODS
            and call.args
        ):
            population = call.args[0]
            # unwrap list(...)/tuple(...) so `rng.choice(list(s))` is
            # still recognized as choosing over a set's order.
            if (
                isinstance(population, ast.Call)
                and call_func_name(population) in ("list", "tuple")
                and population.args
            ):
                population = population.args[0]
            if is_set_expr(population, set_names):
                yield ctx.finding(
                    self.rule_id, call,
                    f"`.{func.attr}()` over a set population: draw order "
                    "depends on set hashing; sort the population first",
                )

        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and call.args
            and is_set_expr(call.args[0], set_names)
        ):
            yield ctx.finding(
                self.rule_id, call,
                f"`.join()` over a set expression: {_MESSAGE}",
            )
