"""Shared effect/hidden-input detection for the purity rules.

R1 (update purity) and R2 (decision/update separation) both need the
same question answered about a method body: does it reach outside the
state it was handed?  The checks:

* calls to I/O builtins (``print``, ``open``, ``input``);
* calls into effectful or nondeterministic modules (``os``, ``sys``,
  ``random``, ``time``, ... — resolved through the module's import map,
  so ``import numpy.random as npr; npr.shuffle(...)`` is caught too);
* from-imported members of those modules (``from random import
  choice``);
* ``global`` / ``nonlocal`` declarations (the only syntactic way a
  method body can rebind module state).

Writes to ``self`` and mutation of the state parameter are handled by
:class:`repro.lint.astutil.MutationFinder`, not here.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..astutil import call_func_name, dotted_name
from ..context import ModuleContext

#: builtins whose mere call is an external effect.
IO_BUILTINS = frozenset({"print", "open", "input", "breakpoint", "exec"})

#: modules a pure state transformer may not call into.  Split by flavor
#: only for the message text.
EFFECT_MODULES = frozenset({
    "os", "sys", "io", "socket", "subprocess", "shutil", "pathlib",
    "logging", "requests", "urllib", "http", "threading",
    "multiprocessing", "sqlite3", "pickle", "tempfile",
})
NONDETERMINISM_MODULES = frozenset({
    "random", "time", "datetime", "uuid", "secrets",
})
BANNED_MODULES = EFFECT_MODULES | NONDETERMINISM_MODULES


def _flavor(module: str) -> str:
    if module.split(".")[0] in NONDETERMINISM_MODULES:
        return "a hidden nondeterministic input"
    return "an external effect"


def effect_calls(
    ctx: ModuleContext, body: List[ast.stmt]
) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, description)`` for every effectful call in
    ``body``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                description = _describe_call(ctx, node)
                if description is not None:
                    yield node, description
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = (
                    "global" if isinstance(node, ast.Global) else "nonlocal"
                )
                yield node, (
                    f"declares `{keyword} {', '.join(node.names)}` — may "
                    "not rebind names outside the state"
                )


def _describe_call(ctx: ModuleContext, call: ast.Call) -> Optional[str]:
    name = call_func_name(call)
    if name in IO_BUILTINS:
        return f"calls `{name}()` — an external effect"
    if name is not None:
        origin = ctx.member_origin(name)
        if origin is not None and origin[0].split(".")[0] in BANNED_MODULES:
            module, member = origin
            return (
                f"calls `{name}()` (from {module}.{member}) — "
                f"{_flavor(module)}"
            )
    dotted = dotted_name(call.func)
    if dotted is not None and "." in dotted:
        root = dotted.split(".")[0]
        module = ctx.module_alias(root)
        if module is not None and module.split(".")[0] in BANNED_MODULES:
            return f"calls `{dotted}()` — {_flavor(module)}"
    return None
