"""Rule modules self-register on import; import them all here."""

from . import (
    determinism,
    footprints,
    iteration,
    purity,
    separation,
    traceschema,
)

__all__ = [
    "determinism",
    "footprints",
    "iteration",
    "purity",
    "separation",
    "traceschema",
]
