"""Rule modules self-register on import; import them all here."""

from . import determinism, iteration, purity, separation, traceschema

__all__ = [
    "determinism",
    "iteration",
    "purity",
    "separation",
    "traceschema",
]
