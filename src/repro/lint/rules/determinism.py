"""R3 — simulation determinism.

Every correctness claim this repo checks — conditions (1)–(4),
t-bounded delay, k-completeness — is asserted over *replayable* runs:
the pinned-seed tests only mean something if the only randomness in a
simulation flows from ``sim.rng.SeededStreams`` or an explicitly
injected ``random.Random``.  The rule therefore bans, anywhere under
the linted tree:

* module-global ``random.*`` calls (``random.choice(...)``,
  ``from random import shuffle; shuffle(...)``) — they read the shared
  interpreter-wide generator any import can perturb;
* unseeded ``random.Random()`` — a fresh generator seeded from the OS;
* wall-clock reads: ``time.time()`` and friends, ``datetime.now()`` /
  ``utcnow()`` / ``today()``;
* OS entropy: ``os.urandom``, ``uuid.uuid1``/``uuid4``, ``secrets.*``.

Seeded construction (``random.Random(seed)``) and merely naming the
types (annotations, ``isinstance``) stay legal.

One class of module is exempt wholesale: the *real-time adapters* named
in :data:`ADAPTER_ALLOWLIST`.  The port refactor (``repro.ports``) keeps
every protocol state machine clock-free — but the adapter that *implements*
the :class:`~repro.ports.Clock` port for the live runtime has to read the
host's clock somewhere, exactly once, by design.  The allowlist names
that module (and only it); protocol and simulator code stays banned from
wall-clock reads no matter what package it lives in.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import call_func_name, dotted_name
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

#: nondeterministic zero-argument-ish calls per module: module → members.
_WALLCLOCK_TIME = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
})
_WALLCLOCK_DATETIME = frozenset({"now", "utcnow", "today"})
_ENTROPY_UUID = frozenset({"uuid1", "uuid4"})

#: Real-time adapter modules exempt from R3 (normalized path suffixes).
#: Keep this list to Clock-port *implementations*: the one place the
#: runtime is allowed to touch the host clock.  Everything else — all
#: protocol modules, the simulator, the runtime's own servers and
#: supervisors — must take time through the Clock port.
ADAPTER_ALLOWLIST: tuple = (
    "repro/runtime/clock.py",
)


def _is_allowlisted_adapter(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in ADAPTER_ALLOWLIST)


@register
class SimDeterminismRule(Rule):
    rule_id = "R3"
    title = (
        "no global-RNG, wall-clock or OS-entropy calls: randomness flows "
        "from SeededStreams or an injected Random"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _is_allowlisted_adapter(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                message = self._describe(ctx, node)
                if message is not None:
                    yield ctx.finding(self.rule_id, node, message)

    def _describe(
        self, ctx: ModuleContext, call: ast.Call
    ) -> Optional[str]:
        # from-imported members: `from random import choice`.
        name = call_func_name(call)
        if name is not None:
            origin = ctx.member_origin(name)
            if origin is not None:
                return self._describe_member(call, *origin, alias=name)

        dotted = dotted_name(call.func)
        if dotted is None or "." not in dotted:
            return None
        root, rest = dotted.split(".", 1)
        module = ctx.module_alias(root)
        if module is not None:
            return self._describe_member(call, module, rest, alias=dotted)
        # `from datetime import datetime; datetime.now()`: the root is a
        # from-imported member, not a module alias.
        origin = ctx.member_origin(root)
        if origin is not None:
            module, member = origin
            return self._describe_member(
                call, module, f"{member}.{rest}", alias=dotted
            )
        return None

    def _describe_member(
        self, call: ast.Call, module: str, member: str, alias: str
    ) -> Optional[str]:
        top = module.split(".")[0]
        if top == "random":
            if member == "Random":
                if not call.args and not call.keywords:
                    return (
                        "unseeded `random.Random()` draws its seed from "
                        "the OS; inject a seeded instance or use "
                        "`sim.rng.SeededStreams`"
                    )
                return None
            if member == "SystemRandom":
                return "`random.SystemRandom` is OS entropy, unreproducible"
            return (
                f"module-global `{alias}()` call: draws from the shared "
                "interpreter-wide generator; use `sim.rng.SeededStreams` "
                "or an injected `random.Random`"
            )
        if top == "time" and member in _WALLCLOCK_TIME:
            return (
                f"`{alias}()` reads the wall clock; simulated time comes "
                "from the Simulator"
            )
        if top == "datetime" and member.split(".")[-1] in _WALLCLOCK_DATETIME:
            return f"`{alias}()` reads the wall clock"
        if top == "os" and member == "urandom":
            return f"`{alias}()` is OS entropy, unreproducible"
        if top == "uuid" and member in _ENTROPY_UUID:
            return f"`{alias}()` is OS-entropy/clock-derived"
        if top == "secrets":
            return f"`{alias}()` is OS entropy, unreproducible"
        return None
