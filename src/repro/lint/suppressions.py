"""Per-line suppression comments.

A finding is silenced by annotating the line it anchors to::

    peers = list(active)  # shardlint: ignore[R4] -- digest cells re-sort

Several rules may be listed (``ignore[R1,R4]``) and ``*`` matches every
rule.  The ``-- reason`` part is mandatory: a suppression without a
written justification suppresses nothing and is itself reported, so the
audit trail the paper's contracts deserve cannot silently decay.
Suppressions that match no finding are reported as unused (warnings by
default, errors under ``--strict``).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: the full, well-formed form (see the module docstring for an example).
_SUPPRESSION = re.compile(
    r"#\s*shardlint:\s*ignore\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)
#: anything that tries to talk to shardlint, for malformed-marker reports.
_MARKER = re.compile(r"#\s*shardlint\b")

_RULE_ID = re.compile(r"^(?:\*|[A-Z][A-Z0-9]*)$")


@dataclass
class Suppression:
    """One parsed ``ignore[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    used: bool = field(default=False)

    def matches(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


@dataclass(frozen=True)
class BadSuppression:
    """A shardlint marker that does not suppress anything."""

    line: int
    message: str


class SuppressionSheet:
    """All suppression comments of one file, indexed by line.

    The source is tokenized so only genuine ``#`` comments count — a
    suppression example quoted inside a docstring or a string literal
    (this module is full of them) is not a suppression.
    """

    def __init__(self, source: str):
        self.by_line: Dict[int, Suppression] = {}
        self.malformed: List[BadSuppression] = []
        for lineno, text in self._comments(source):
            self._parse_line(lineno, text)

    @staticmethod
    def _comments(source: str):
        try:
            for token in tokenize.generate_tokens(
                io.StringIO(source).readline
            ):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # unparseable tail: the engine reports the syntax error
            # through its own PARSE finding; no suppressions beyond
            # what was already tokenized.
            return

    def _parse_line(self, lineno: int, text: str) -> None:
        match = _SUPPRESSION.search(text)
        if match is None:
            if _MARKER.search(text):
                self.malformed.append(BadSuppression(
                    lineno,
                    "malformed shardlint comment: expected "
                    "'# shardlint: ignore[RULE] -- reason'",
                ))
            return
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = match.group("reason")
        if not rules or not all(_RULE_ID.match(r) for r in rules):
            self.malformed.append(BadSuppression(
                lineno,
                "suppression lists no valid rule ids "
                "(expected e.g. ignore[R1] or ignore[R1,R4])",
            ))
            return
        if not reason:
            self.malformed.append(BadSuppression(
                lineno,
                "suppression has no justification: append "
                "'-- <why this finding is acceptable>'",
            ))
            return
        self.by_line[lineno] = Suppression(lineno, rules, reason)

    def lookup(self, line: int, rule: str) -> Optional[Suppression]:
        """The suppression covering ``rule`` on ``line``, if any."""
        suppression = self.by_line.get(line)
        if suppression is not None and suppression.matches(rule):
            return suppression
        return None

    def unused(self) -> Sequence[Suppression]:
        return tuple(
            s for _, s in sorted(self.by_line.items()) if not s.used
        )
