"""Shared AST analyses: name resolution, set-typed expressions, and the
taint-based in-place-mutation finder used by the purity rules.

Everything here is deliberately *syntactic*.  shardlint runs with no
type information and no imports of the code under analysis, so each
helper implements a conservative approximation that is documented where
it matters.  False negatives are acceptable (conventions plus review
catch the rest); false positives are paid for by suppression comments,
so the heuristics lean precise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

# -- dotted names ---------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute/subscript chain, else None.

    ``state.waiting[0].x`` → ``state``; calls break the chain (their
    result is a fresh value, not an alias of the receiver — a shallow
    approximation that matches the immutable-leaning style the states
    use).
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_func_name(call: ast.Call) -> Optional[str]:
    """The called plain name (``open`` in ``open(...)``), else None."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


# -- imports --------------------------------------------------------------


class ImportMap:
    """Local-name → module bindings for one module.

    ``modules`` maps an alias to the module it names (``import random``
    → ``{"random": "random"}``, ``import numpy as np`` → ``{"np":
    "numpy"}``; for ``import os.path`` the binding is the top package
    ``os``).  ``members`` maps a from-imported name to ``(module,
    original_name)``.
    """

    def __init__(self, tree: ast.Module):
        self.modules: Dict[str, str] = {}
        self.members: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    self.modules[alias.asname or top] = (
                        alias.name if alias.asname else top
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.members[alias.asname or alias.name] = (
                        node.module, alias.name
                    )

    def module_of(self, name: str) -> Optional[str]:
        return self.modules.get(name)

    def member_origin(self, name: str) -> Optional[Tuple[str, str]]:
        return self.members.get(name)


# -- class/base helpers ---------------------------------------------------


def base_last_segments(classdef: ast.ClassDef) -> Tuple[str, ...]:
    """Last dotted segment of every base class expression."""
    out: List[str] = []
    for base in classdef.bases:
        name = dotted_name(base)
        if name is not None:
            out.append(name.split(".")[-1])
    return tuple(out)


def subclasses_of(tree: ast.Module, suffix: str) -> Iterator[ast.ClassDef]:
    """Classes whose some base name ends with ``suffix``.

    Purely nominal: ``RequestUpdate(AirlineUpdate)`` is recognized as an
    update class because ``AirlineUpdate`` ends with ``Update``.  The
    abstract roots (``Update(abc.ABC)``, ``Transaction(abc.ABC)``) are
    *not* matched — their bases do not carry the suffix — which is what
    exempts the framework's own abstract methods.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            seg == suffix or seg.endswith(suffix)
            for seg in base_last_segments(node)
        ):
            yield node


def find_method(
    classdef: ast.ClassDef, name: str
) -> Optional[ast.FunctionDef]:
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def positional_params(func: ast.FunctionDef) -> Tuple[str, ...]:
    return tuple(a.arg for a in func.args.posonlyargs + func.args.args)


# -- module-level string constants ---------------------------------------


def module_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Top-level ``NAME = "literal"`` bindings (e.g. trace-kind
    constants), so rules can resolve ``_trace(GOSSIP_SYN, ...)``."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[node.targets[0].id] = node.value.value
    return out


# -- set-typed expressions (rule R4) -------------------------------------

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def is_set_expr(
    node: ast.AST, set_names: frozenset = frozenset()
) -> bool:
    """Is ``node`` syntactically guaranteed to evaluate to a set?

    Covers literals (``{a, b}``), set comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, the set operators ``| & - ^`` with a set
    operand, the four set-algebra methods called on a set expression,
    and plain names the caller has proven set-typed (``set_names``, from
    :func:`set_typed_names`).  Values that are merely *annotated* as
    sets are not recognized — that is the deliberate precision/recall
    trade-off.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        name = call_func_name(node)
        if name in _SET_CONSTRUCTORS:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and is_set_expr(node.func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return (
            is_set_expr(node.left, set_names)
            or is_set_expr(node.right, set_names)
        )
    return False


def scope_statements(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Every node of a scope, *not* descending into nested function or
    class bodies (those are separate scopes with their own bindings)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue  # a nested scope: its own pass handles its body
        stack.extend(ast.iter_child_nodes(node))


def set_typed_names(body: Sequence[ast.stmt]) -> frozenset:
    """Names of one scope that are sets on *every* assignment.

    Flow-insensitive: a name qualifies only if each of its bindings in
    the scope is a syntactic set expression (``seen = set()``) and it is
    never rebound by a loop target, ``with ... as``, or an unknown
    value.  Augmented set algebra (``seen |= ...``) keeps the type, so
    the accumulate-into-a-set idiom is recognized.
    """
    candidates: set = set()
    poisoned: set = set()

    def poison_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            poisoned.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                poison_target(elt)
        elif isinstance(target, ast.Starred):
            poison_target(target.value)

    for node in scope_statements(body):
        if isinstance(node, ast.Assign):
            simple_set = is_set_expr(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name) and simple_set:
                    candidates.add(target.id)
                else:
                    poison_target(target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and is_set_expr(node.value):
                candidates.add(node.target.id)
            else:
                poison_target(node.target)
        elif isinstance(node, ast.AugAssign):
            if not isinstance(node.op, _SET_BINOPS):
                poison_target(node.target)
        elif isinstance(node, ast.For):
            poison_target(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            poison_target(node.optional_vars)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                poisoned.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            poisoned.update(node.names)
        elif isinstance(node, ast.NamedExpr):
            poison_target(node.target)
        elif isinstance(node, ast.excepthandler) and node.name:
            poisoned.add(node.name)
    return frozenset(candidates - poisoned)


# -- apply-body shape analysis (rule R6, repro.certify) ------------------
#
# ``Update.apply`` bodies in this codebase follow a tiny grammar:
#
#     def apply(self, state):
#         [docstring] [asserts]
#         (if <guard>: return state)*
#         return Ctor(arg, ...)          # constructor rewrite
#       | return state.m(...).m(...)     # state-method chain
#       | return state                   # identity
#
# The parser below recognizes exactly that grammar — anything else is
# ``None`` (unrecognized), which both consumers treat conservatively:
# rule R6 skips the class, the certifier refuses to certify it.  Like
# everything in this module the analysis is purely syntactic; the
# certifier layers runtime knowledge (dataclass fields, state-method
# bodies) on top.


@dataclass(frozen=True)
class ArgEffect:
    """One constructor argument, classified.

    ``kind`` is one of ``identity`` (a bare pass-through of one state
    attribute), ``filter`` (a genexp dropping elements equal to one
    ``self`` parameter), ``append`` / ``prepend`` (concatenating a
    one-element tuple of a ``self`` parameter at the end / head),
    ``clamped`` (wrapped in ``max``/``min`` — the monus-style bounded
    shapes, which do *not* commute), or ``opaque``.
    """

    kind: str
    self_attr: Optional[str] = None
    state_attr: Optional[str] = None
    #: state attributes/methods this argument reads (empty for identity
    #: pass-throughs, which are excluded from footprints by convention).
    mentions: Tuple[str, ...] = ()


@dataclass(frozen=True)
class GuardShape:
    """One early-return guard ``if <test>: return state``.

    ``calls`` records each ``state.<method>(self.<attr>, ...)``
    membership probe in the test; ``mentions`` records every state
    attribute/method the test touches (a superset of the call names).
    """

    calls: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    mentions: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ApplyShape:
    """The parsed shape of one ``Update.apply`` body."""

    #: "constructor", "chain", or "identity".
    kind: str
    guards: Tuple[GuardShape, ...] = ()
    ctor: Optional[str] = None
    args: Tuple[ArgEffect, ...] = ()
    chain_method: Optional[str] = None
    #: per chain call: (key self-attr, delta self-attr) — None entries
    #: mean the argument was not a plain ``self.<attr>`` / ``-self.<attr>``.
    chain_calls: Tuple[Tuple[Optional[str], Optional[str]], ...] = ()
    state_param: str = "state"

    @property
    def self_attrs(self) -> Tuple[str, ...]:
        """Every distinct ``self`` parameter the body is keyed by."""
        attrs: Set[str] = set()
        for guard in self.guards:
            for _, call_attrs in guard.calls:
                attrs.update(call_attrs)
        for arg in self.args:
            if arg.self_attr is not None:
                attrs.add(arg.self_attr)
        for key, delta in self.chain_calls:
            attrs.update(a for a in (key, delta) if a is not None)
        return tuple(sorted(attrs))


def state_mentions(node: ast.AST, state_name: str) -> Tuple[str, ...]:
    """Sorted attribute/method names accessed on ``state_name`` in
    ``node`` (``state.waiting`` → ``waiting``, ``state.is_known(p)`` →
    ``is_known``)."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == state_name
        ):
            out.add(sub.attr)
    return tuple(sorted(out))


def _bare_state_attr(node: ast.AST, state_name: str) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == state_name
    ):
        return node.attr
    return None


def _self_attr(node: ast.AST, self_name: str) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _single_self_tuple(node: ast.AST, self_name: str) -> Optional[str]:
    """``(self.x,)`` → ``"x"``, else None."""
    if isinstance(node, ast.Tuple) and len(node.elts) == 1:
        return _self_attr(node.elts[0], self_name)
    return None


def _filter_genexp(
    node: ast.AST, state_name: str, self_name: str
) -> Optional[Tuple[str, str]]:
    """``tuple(p for p in state.X if p != self.a)`` → ``("X", "a")``."""
    if not (
        isinstance(node, ast.Call)
        and call_func_name(node) == "tuple"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.GeneratorExp)
    ):
        return None
    genexp = node.args[0]
    if len(genexp.generators) != 1:
        return None
    gen = genexp.generators[0]
    if gen.is_async or len(gen.ifs) != 1:
        return None
    if not isinstance(gen.target, ast.Name):
        return None
    var = gen.target.id
    if not (isinstance(genexp.elt, ast.Name) and genexp.elt.id == var):
        return None
    state_attr = _bare_state_attr(gen.iter, state_name)
    if state_attr is None:
        return None
    cond = gen.ifs[0]
    if not (
        isinstance(cond, ast.Compare)
        and len(cond.ops) == 1
        and isinstance(cond.ops[0], ast.NotEq)
    ):
        return None
    left, right = cond.left, cond.comparators[0]
    for a, b in ((left, right), (right, left)):
        if isinstance(a, ast.Name) and a.id == var:
            key = _self_attr(b, self_name)
            if key is not None:
                return (state_attr, key)
    return None


def classify_ctor_arg(
    node: ast.AST, state_name: str, self_name: str
) -> ArgEffect:
    """Classify one constructor argument per :class:`ArgEffect`."""
    bare = _bare_state_attr(node, state_name)
    if bare is not None:
        return ArgEffect(kind="identity", state_attr=bare)
    filt = _filter_genexp(node, state_name, self_name)
    if filt is not None:
        state_attr, key = filt
        return ArgEffect(
            kind="filter", self_attr=key, state_attr=state_attr,
            mentions=(state_attr,),
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left_attr = _bare_state_attr(node.left, state_name)
        right_key = _single_self_tuple(node.right, self_name)
        if left_attr is not None and right_key is not None:
            return ArgEffect(
                kind="append", self_attr=right_key, state_attr=left_attr,
                mentions=(left_attr,),
            )
        right_attr = _bare_state_attr(node.right, state_name)
        left_key = _single_self_tuple(node.left, self_name)
        if right_attr is not None and left_key is not None:
            return ArgEffect(
                kind="prepend", self_attr=left_key, state_attr=right_attr,
                mentions=(right_attr,),
            )
    mentions = state_mentions(node, state_name)
    if (
        isinstance(node, ast.Call)
        and call_func_name(node) in ("max", "min")
        and mentions
    ):
        return ArgEffect(kind="clamped", mentions=mentions)
    return ArgEffect(kind="opaque", mentions=mentions)


def _parse_guard(
    stmt: ast.stmt, state_name: str, self_name: str
) -> Optional[GuardShape]:
    """``if <test>: return state`` (no else) → its :class:`GuardShape`."""
    if not (
        isinstance(stmt, ast.If)
        and not stmt.orelse
        and len(stmt.body) == 1
        and isinstance(stmt.body[0], ast.Return)
        and isinstance(stmt.body[0].value, ast.Name)
        and stmt.body[0].value.id == state_name
    ):
        return None
    calls: List[Tuple[str, Tuple[str, ...]]] = []
    for sub in ast.walk(stmt.test):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == state_name
        ):
            attrs = tuple(
                a for a in (
                    _self_attr(arg, self_name) for arg in sub.args
                ) if a is not None
            )
            calls.append((sub.func.attr, attrs))
    return GuardShape(
        calls=tuple(calls),
        mentions=state_mentions(stmt.test, state_name),
    )


def _parse_chain(
    node: ast.AST, state_name: str, self_name: str
) -> Optional[Tuple[str, Tuple[Tuple[Optional[str], Optional[str]], ...]]]:
    """``state.m(k, d).m(k2, d2)...`` → (``m``, per-call key/delta attrs)."""

    def call_arg_attr(arg: ast.AST) -> Optional[str]:
        attr = _self_attr(arg, self_name)
        if attr is not None:
            return attr
        if isinstance(arg, ast.UnaryOp) and isinstance(arg.op, ast.USub):
            return _self_attr(arg.operand, self_name)
        return None

    calls: List[Tuple[str, Tuple[Optional[str], Optional[str]]]] = []
    while isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        args = node.args
        key = call_arg_attr(args[0]) if len(args) >= 1 else None
        delta = call_arg_attr(args[1]) if len(args) >= 2 else None
        calls.append((node.func.attr, (key, delta)))
        node = node.func.value
    if not calls:
        return None
    if not (isinstance(node, ast.Name) and node.id == state_name):
        return None
    methods = {m for m, _ in calls}
    if len(methods) != 1:
        return None
    calls.reverse()
    return (calls[0][0], tuple(kd for _, kd in calls))


def parse_apply_shape(func: ast.FunctionDef) -> Optional[ApplyShape]:
    """Parse an ``apply`` body against the grammar above, or ``None``."""
    params = positional_params(func)
    if len(params) < 2:
        return None
    self_name, state_name = params[0], params[1]

    guards: List[GuardShape] = []
    final: Optional[ast.Return] = None
    for stmt in func.body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring
        if isinstance(stmt, ast.Assert):
            continue
        if final is not None:
            return None  # statements after the final return
        guard = _parse_guard(stmt, state_name, self_name)
        if guard is not None:
            guards.append(guard)
            continue
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            final = stmt
            continue
        return None  # locals, loops, multi-way branches: unrecognized
    if final is None:
        return None
    value = final.value

    if isinstance(value, ast.Name) and value.id == state_name:
        return ApplyShape(
            kind="identity", guards=tuple(guards), state_param=state_name
        )
    chain = _parse_chain(value, state_name, self_name)
    if chain is not None:
        method, chain_calls = chain
        return ApplyShape(
            kind="chain",
            guards=tuple(guards),
            chain_method=method,
            chain_calls=chain_calls,
            state_param=state_name,
        )
    if isinstance(value, ast.Call) and not value.keywords:
        ctor = dotted_name(value.func)
        if ctor is not None and ctor.split(".")[-1][:1].isupper():
            args = tuple(
                classify_ctor_arg(arg, state_name, self_name)
                for arg in value.args
            )
            return ApplyShape(
                kind="constructor",
                guards=tuple(guards),
                ctor=ctor.split(".")[-1],
                args=args,
                state_param=state_name,
            )
    return None


def infer_update_footprint(
    func: ast.FunctionDef,
) -> Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """The statically inferred (reads, writes) footprint of one
    ``apply`` body at state-attribute granularity, or ``None`` when the
    body does not fit the recognized grammar.

    Reads are the state attributes/methods the guards probe plus those
    the non-identity constructor arguments consume; writes are the
    attributes those arguments rewrite.  Identity pass-throughs
    (``Ctor(state.assigned, ...)``) are excluded from both, matching
    the convention of the declared family footprints.
    """
    shape = parse_apply_shape(func)
    if shape is None:
        return None
    if shape.kind == "identity":
        guard_reads: Set[str] = set()
        for guard in shape.guards:
            guard_reads.update(guard.mentions)
        return (tuple(sorted(guard_reads)), ())
    if shape.kind == "chain":
        method = (shape.chain_method,)
        reads: Set[str] = set(method)
        for guard in shape.guards:
            reads.update(guard.mentions)
        return (tuple(sorted(reads)), method)
    reads = set()
    writes: Set[str] = set()
    for guard in shape.guards:
        reads.update(guard.mentions)
    for arg in shape.args:
        if arg.kind == "identity":
            continue
        reads.update(arg.mentions)
        writes.update(arg.mentions)
    return (tuple(sorted(reads)), tuple(sorted(writes)))


# -- taint-based mutation analysis (rules R1/R2) -------------------------

#: method names that mutate their receiver in place.  ``update`` and
#: ``pop`` also exist on immutable-ish objects, but a pure transformer
#: has no business calling either on anything reached from the state.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "discard", "pop", "popitem",
    "clear", "update", "setdefault", "add", "sort", "reverse",
    "appendleft", "popleft", "extendleft", "rotate",
    "difference_update", "intersection_update", "symmetric_difference_update",
    "write", "writelines",
})


class MutationFinder(ast.NodeVisitor):
    """Finds in-place mutation of values reachable from protected names.

    Taint starts at the protected parameter names and flows through
    plain aliasing assignments (``lst = state.waiting``) and loop
    targets (``for g, members in state.groups``).  Calls break taint:
    ``list(state.waiting)`` is treated as a fresh copy.  The pass is a
    single forward walk, which matches the straight-line style of
    decision/update bodies.

    Each violation is reported as ``(node, description)``.
    """

    def __init__(self, protected: Sequence[str]):
        self.tainted: Set[str] = set(protected)
        self.violations: List[Tuple[ast.AST, str]] = []

    # taint propagation ---------------------------------------------------

    def _is_tainted(self, node: ast.AST) -> bool:
        root = root_name(node)
        return root is not None and root in self.tainted

    def _bind_target(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, tainted)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, tainted)

    def _flag(self, node: ast.AST, description: str) -> None:
        self.violations.append((node, description))

    def _check_write_target(self, target: ast.AST, verb: str) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            if self._is_tainted(target):
                root = root_name(target)
                self._flag(target, f"{verb} `{root}` in place")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_write_target(elt, verb)

    # visitors ------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        tainted = self._is_tainted(node.value)
        for target in node.targets:
            self._check_write_target(target, "assigns into")
            self._bind_target(target, tainted)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._check_write_target(node.target, "assigns into")
            self._bind_target(node.target, self._is_tainted(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        # `x += ...` on a bare tainted name rebinds the local (fine for
        # immutables) *unless* the value is a list/set reached from the
        # state, where += mutates in place.  Flag attribute/subscript
        # targets, which always go through the shared object.
        self._check_write_target(node.target, "augments")

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write_target(target, "deletes from")

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._bind_target(node.target, self._is_tainted(node.iter))
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self.visit(gen.iter)
            self._bind_target(gen.target, self._is_tainted(gen.iter))
            for cond in gen.ifs:
                self.visit(cond)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.visit(node.elt)

    visit_SetComp = visit_ListComp
    visit_GeneratorExp = visit_ListComp

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.visit(node.key)
        self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and self._is_tainted(node.func.value)
        ):
            root = root_name(node.func.value)
            self._flag(
                node,
                f"calls `.{node.func.attr}()` on a value reached from "
                f"`{root}`",
            )
        name = call_func_name(node)
        if name in ("setattr", "delattr") and node.args:
            if self._is_tainted(node.args[0]):
                root = root_name(node.args[0])
                self._flag(node, f"calls `{name}()` on `{root}`")
        self.generic_visit(node)

    def run(self, body: Sequence[ast.stmt]) -> List[Tuple[ast.AST, str]]:
        for stmt in body:
            self.visit(stmt)
        return self.violations
