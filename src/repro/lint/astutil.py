"""Shared AST analyses: name resolution, set-typed expressions, and the
taint-based in-place-mutation finder used by the purity rules.

Everything here is deliberately *syntactic*.  shardlint runs with no
type information and no imports of the code under analysis, so each
helper implements a conservative approximation that is documented where
it matters.  False negatives are acceptable (conventions plus review
catch the rest); false positives are paid for by suppression comments,
so the heuristics lean precise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

# -- dotted names ---------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute/subscript chain, else None.

    ``state.waiting[0].x`` → ``state``; calls break the chain (their
    result is a fresh value, not an alias of the receiver — a shallow
    approximation that matches the immutable-leaning style the states
    use).
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_func_name(call: ast.Call) -> Optional[str]:
    """The called plain name (``open`` in ``open(...)``), else None."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


# -- imports --------------------------------------------------------------


class ImportMap:
    """Local-name → module bindings for one module.

    ``modules`` maps an alias to the module it names (``import random``
    → ``{"random": "random"}``, ``import numpy as np`` → ``{"np":
    "numpy"}``; for ``import os.path`` the binding is the top package
    ``os``).  ``members`` maps a from-imported name to ``(module,
    original_name)``.
    """

    def __init__(self, tree: ast.Module):
        self.modules: Dict[str, str] = {}
        self.members: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    self.modules[alias.asname or top] = (
                        alias.name if alias.asname else top
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.members[alias.asname or alias.name] = (
                        node.module, alias.name
                    )

    def module_of(self, name: str) -> Optional[str]:
        return self.modules.get(name)

    def member_origin(self, name: str) -> Optional[Tuple[str, str]]:
        return self.members.get(name)


# -- class/base helpers ---------------------------------------------------


def base_last_segments(classdef: ast.ClassDef) -> Tuple[str, ...]:
    """Last dotted segment of every base class expression."""
    out: List[str] = []
    for base in classdef.bases:
        name = dotted_name(base)
        if name is not None:
            out.append(name.split(".")[-1])
    return tuple(out)


def subclasses_of(tree: ast.Module, suffix: str) -> Iterator[ast.ClassDef]:
    """Classes whose some base name ends with ``suffix``.

    Purely nominal: ``RequestUpdate(AirlineUpdate)`` is recognized as an
    update class because ``AirlineUpdate`` ends with ``Update``.  The
    abstract roots (``Update(abc.ABC)``, ``Transaction(abc.ABC)``) are
    *not* matched — their bases do not carry the suffix — which is what
    exempts the framework's own abstract methods.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            seg == suffix or seg.endswith(suffix)
            for seg in base_last_segments(node)
        ):
            yield node


def find_method(
    classdef: ast.ClassDef, name: str
) -> Optional[ast.FunctionDef]:
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def positional_params(func: ast.FunctionDef) -> Tuple[str, ...]:
    return tuple(a.arg for a in func.args.posonlyargs + func.args.args)


# -- module-level string constants ---------------------------------------


def module_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Top-level ``NAME = "literal"`` bindings (e.g. trace-kind
    constants), so rules can resolve ``_trace(GOSSIP_SYN, ...)``."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[node.targets[0].id] = node.value.value
    return out


# -- set-typed expressions (rule R4) -------------------------------------

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def is_set_expr(
    node: ast.AST, set_names: frozenset = frozenset()
) -> bool:
    """Is ``node`` syntactically guaranteed to evaluate to a set?

    Covers literals (``{a, b}``), set comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, the set operators ``| & - ^`` with a set
    operand, the four set-algebra methods called on a set expression,
    and plain names the caller has proven set-typed (``set_names``, from
    :func:`set_typed_names`).  Values that are merely *annotated* as
    sets are not recognized — that is the deliberate precision/recall
    trade-off.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        name = call_func_name(node)
        if name in _SET_CONSTRUCTORS:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and is_set_expr(node.func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return (
            is_set_expr(node.left, set_names)
            or is_set_expr(node.right, set_names)
        )
    return False


def scope_statements(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Every node of a scope, *not* descending into nested function or
    class bodies (those are separate scopes with their own bindings)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue  # a nested scope: its own pass handles its body
        stack.extend(ast.iter_child_nodes(node))


def set_typed_names(body: Sequence[ast.stmt]) -> frozenset:
    """Names of one scope that are sets on *every* assignment.

    Flow-insensitive: a name qualifies only if each of its bindings in
    the scope is a syntactic set expression (``seen = set()``) and it is
    never rebound by a loop target, ``with ... as``, or an unknown
    value.  Augmented set algebra (``seen |= ...``) keeps the type, so
    the accumulate-into-a-set idiom is recognized.
    """
    candidates: set = set()
    poisoned: set = set()

    def poison_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            poisoned.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                poison_target(elt)
        elif isinstance(target, ast.Starred):
            poison_target(target.value)

    for node in scope_statements(body):
        if isinstance(node, ast.Assign):
            simple_set = is_set_expr(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name) and simple_set:
                    candidates.add(target.id)
                else:
                    poison_target(target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and is_set_expr(node.value):
                candidates.add(node.target.id)
            else:
                poison_target(node.target)
        elif isinstance(node, ast.AugAssign):
            if not isinstance(node.op, _SET_BINOPS):
                poison_target(node.target)
        elif isinstance(node, ast.For):
            poison_target(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            poison_target(node.optional_vars)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                poisoned.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            poisoned.update(node.names)
        elif isinstance(node, ast.NamedExpr):
            poison_target(node.target)
        elif isinstance(node, ast.excepthandler) and node.name:
            poisoned.add(node.name)
    return frozenset(candidates - poisoned)


# -- taint-based mutation analysis (rules R1/R2) -------------------------

#: method names that mutate their receiver in place.  ``update`` and
#: ``pop`` also exist on immutable-ish objects, but a pure transformer
#: has no business calling either on anything reached from the state.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "discard", "pop", "popitem",
    "clear", "update", "setdefault", "add", "sort", "reverse",
    "appendleft", "popleft", "extendleft", "rotate",
    "difference_update", "intersection_update", "symmetric_difference_update",
    "write", "writelines",
})


class MutationFinder(ast.NodeVisitor):
    """Finds in-place mutation of values reachable from protected names.

    Taint starts at the protected parameter names and flows through
    plain aliasing assignments (``lst = state.waiting``) and loop
    targets (``for g, members in state.groups``).  Calls break taint:
    ``list(state.waiting)`` is treated as a fresh copy.  The pass is a
    single forward walk, which matches the straight-line style of
    decision/update bodies.

    Each violation is reported as ``(node, description)``.
    """

    def __init__(self, protected: Sequence[str]):
        self.tainted: Set[str] = set(protected)
        self.violations: List[Tuple[ast.AST, str]] = []

    # taint propagation ---------------------------------------------------

    def _is_tainted(self, node: ast.AST) -> bool:
        root = root_name(node)
        return root is not None and root in self.tainted

    def _bind_target(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, tainted)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, tainted)

    def _flag(self, node: ast.AST, description: str) -> None:
        self.violations.append((node, description))

    def _check_write_target(self, target: ast.AST, verb: str) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            if self._is_tainted(target):
                root = root_name(target)
                self._flag(target, f"{verb} `{root}` in place")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_write_target(elt, verb)

    # visitors ------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        tainted = self._is_tainted(node.value)
        for target in node.targets:
            self._check_write_target(target, "assigns into")
            self._bind_target(target, tainted)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._check_write_target(node.target, "assigns into")
            self._bind_target(node.target, self._is_tainted(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        # `x += ...` on a bare tainted name rebinds the local (fine for
        # immutables) *unless* the value is a list/set reached from the
        # state, where += mutates in place.  Flag attribute/subscript
        # targets, which always go through the shared object.
        self._check_write_target(node.target, "augments")

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write_target(target, "deletes from")

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._bind_target(node.target, self._is_tainted(node.iter))
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_comprehension_generators(self, generators) -> None:
        for gen in generators:
            self.visit(gen.iter)
            self._bind_target(gen.target, self._is_tainted(gen.iter))
            for cond in gen.ifs:
                self.visit(cond)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.visit(node.elt)

    visit_SetComp = visit_ListComp
    visit_GeneratorExp = visit_ListComp

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.visit(node.key)
        self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and self._is_tainted(node.func.value)
        ):
            root = root_name(node.func.value)
            self._flag(
                node,
                f"calls `.{node.func.attr}()` on a value reached from "
                f"`{root}`",
            )
        name = call_func_name(node)
        if name in ("setattr", "delattr") and node.args:
            if self._is_tainted(node.args[0]):
                root = root_name(node.args[0])
                self._flag(node, f"calls `{name}()` on `{root}`")
        self.generic_visit(node)

    def run(self, body: Sequence[ast.stmt]) -> List[Tuple[ast.AST, str]]:
        for stmt in body:
            self.visit(stmt)
        return self.violations
