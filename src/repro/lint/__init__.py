"""shardlint: AST-based checker for the paper's semantic contracts.

The type system cannot see the contracts the SHARD correctness story
rests on: update parts must be pure state transformers (they are rerun
arbitrarily many times under reordering, Section 2.2), decision parts
run exactly once and own all external actions, and the simulation layer
must be bit-for-bit reproducible for the trace-based condition checks to
mean anything.  shardlint enforces those conventions statically:

* **R1 update-purity** — ``Update.apply`` overrides may not do I/O, draw
  randomness or wall-clock time, write attributes on ``self`` or
  globals, or mutate the input state in place;
* **R2 decision/update separation** — ``Transaction.decide`` must not
  mutate state and produces effects only via ``ExternalAction``;
  ``Transaction.run`` overrides must route through decide + apply;
* **R3 sim determinism** — no module-global ``random.*`` calls,
  unseeded ``random.Random()``, wall-clock reads, or ``os.urandom``:
  randomness must flow from ``sim.rng.SeededStreams`` or an injected
  ``random.Random``;
* **R4 iteration-order hazards** — order-sensitive consumption of
  ``set``/``frozenset`` values without an enclosing ``sorted()``;
* **R5 trace-schema** — every trace emit call site's event kind and
  detail keys must match the ``EVENT_SCHEMAS`` registry in
  ``repro.sim.trace``.

Findings are suppressed per line with a justified comment::

    risky_call()  # shardlint: ignore[R4] -- order irrelevant: feeds a set

Run it as ``python -m repro.lint src/repro`` (see :mod:`repro.lint.cli`)
or through :func:`lint_paths` / :func:`run_lint` from tests.
"""

from .findings import Finding
from .engine import LintResult, lint_paths, lint_source, run_lint
from .registry import RULES, Rule, all_rules, register

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
    "run_lint",
]
