"""The finding record shared by rules, the engine and the reporters."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``line``/``col`` are 1-based/0-based as in the ``ast`` module, so a
    finding points at exactly the node that triggered it.  ``suppressed``
    and ``suppression_reason`` are filled in by the engine after matching
    the file's suppression comments; rules never set them.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = field(default=False, compare=False)
    suppression_reason: Optional[str] = field(default=None, compare=False)

    def with_suppression(self, reason: str) -> "Finding":
        return replace(self, suppressed=True, suppression_reason=reason)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> dict:
        out = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["suppression_reason"] = self.suppression_reason
        return out


def sort_findings(findings) -> Tuple[Finding, ...]:
    """Stable report order: by path, then line, then column, then rule."""
    return tuple(sorted(findings))
