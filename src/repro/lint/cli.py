"""``python -m repro.lint`` — the shardlint command line.

Examples::

    python -m repro.lint src/repro                 # text report
    python -m repro.lint src/repro --format=json   # CI artifact
    python -m repro.lint src/repro --select R3,R4  # a rule subset
    python -m repro.lint --list-rules

Exit status: 0 when no unsuppressed finding remains (suppression
problems still print as warnings unless ``--strict`` promotes them),
1 when findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .engine import run_lint
from .reporters import render_json, render_rule_list, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "shardlint: AST contract checker for the SHARD purity, "
            "determinism and trace invariants"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on suppression problems (malformed/unused)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    paths = args.paths or ["src/repro"]
    select = (
        [r.strip() for r in args.select.split(",") if r.strip()]
        if args.select else None
    )
    try:
        result, status = run_lint(paths, select=select, strict=args.strict)
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))
        return 2  # unreachable; parser.error raises SystemExit(2)

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.show_suppressed))
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
