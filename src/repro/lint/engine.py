"""The lint driver: walk files, run rules, apply suppressions."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .context import ModuleContext
from .findings import Finding, sort_findings
from .registry import Rule, all_rules
from .suppressions import SuppressionSheet


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``findings`` are the live (unsuppressed) violations — the exit
    status; ``suppressed`` records what the ignore comments silenced,
    with their written justifications; ``problems`` are defects in the
    suppression comments themselves (malformed markers, missing
    reasons, ignores that matched nothing), which warn by default and
    fail under ``--strict``.
    """

    findings: Tuple[Finding, ...] = ()
    suppressed: Tuple[Finding, ...] = ()
    problems: Tuple[Finding, ...] = ()
    files_checked: int = 0
    rules_run: Tuple[str, ...] = field(default=())

    def ok(self, strict: bool = False) -> bool:
        if strict:
            return not self.findings and not self.problems
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, deduplicated .py list —
    sorted so reports (and CI diffs of reports) are stable."""
    out = []
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        full = os.path.join(dirpath, filename)
                        if full not in seen:
                            seen.add(full)
                            out.append(full)
        elif path not in seen:
            seen.add(path)
            out.append(path)
    return sorted(out)


def lint_source(
    path: str,
    source: str,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint one in-memory module (the unit the fixture tests drive)."""
    if rules is None:
        rules = all_rules()
    try:
        ctx = ModuleContext.parse(path, source)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule="PARSE",
            message=f"syntax error: {exc.msg}",
        )
        return LintResult(
            findings=(finding,),
            files_checked=1,
            rules_run=tuple(r.rule_id for r in rules),
        )

    sheet = SuppressionSheet(source)
    live: List[Finding] = []
    silenced: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            suppression = sheet.lookup(finding.line, finding.rule)
            if suppression is not None:
                suppression.used = True
                silenced.append(
                    finding.with_suppression(suppression.reason)
                )
            else:
                live.append(finding)

    problems: List[Finding] = [
        Finding(path=path, line=bad.line, col=0, rule="SUPPRESS",
                message=bad.message)
        for bad in sheet.malformed
    ]
    for unused in sheet.unused():
        problems.append(Finding(
            path=path, line=unused.line, col=0, rule="SUPPRESS",
            message=(
                "unused suppression "
                f"ignore[{','.join(unused.rules)}]: no finding of these "
                "rules on this line — remove it or fix the rule list"
            ),
        ))

    return LintResult(
        findings=sort_findings(live),
        suppressed=sort_findings(silenced),
        problems=sort_findings(problems),
        files_checked=1,
        rules_run=tuple(r.rule_id for r in rules),
    )


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every .py file under ``paths`` with the selected rules."""
    rules = all_rules(select)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    problems: List[Finding] = []
    files = iter_python_files(paths)
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        result = lint_source(path, source, rules)
        findings.extend(result.findings)
        suppressed.extend(result.suppressed)
        problems.extend(result.problems)
    return LintResult(
        findings=sort_findings(findings),
        suppressed=sort_findings(suppressed),
        problems=sort_findings(problems),
        files_checked=len(files),
        rules_run=tuple(r.rule_id for r in rules),
    )


def run_lint(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    strict: bool = False,
) -> Tuple[LintResult, int]:
    """Lint and map the outcome to a process exit status."""
    result = lint_paths(paths, select)
    return result, (0 if result.ok(strict) else 1)
