"""The per-module view rules are given to check."""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple

from .astutil import ImportMap, module_string_constants
from .findings import Finding


class ModuleContext:
    """One parsed source file plus the lookups every rule needs.

    The expensive artifacts (import map, string-constant table) are
    built once here, so adding a rule costs one AST walk, not a reparse.
    """

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        self.string_constants: Dict[str, str] = module_string_constants(tree)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        return cls(path, source, ast.parse(source, filename=path))

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )

    def resolve_string(self, node: ast.AST) -> Optional[str]:
        """The string value of ``node`` if statically known: a literal,
        or a Name bound to a module-level string constant."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.string_constants.get(node.id)
        return None

    def module_alias(self, name: str) -> Optional[str]:
        return self.imports.module_of(name)

    def member_origin(self, name: str) -> Optional[Tuple[str, str]]:
        return self.imports.member_origin(name)
