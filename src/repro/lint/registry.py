"""The pluggable rule registry.

A rule is a class with a ``rule_id``, a one-line ``title``, and a
``check(context)`` generator of findings.  Registration is a decorator,
so dropping a new module into :mod:`repro.lint.rules` (and importing it
from the package) is all it takes to extend the pass — the engine, CLI,
``--select`` filtering and the reporters pick it up from here.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Type

from .context import ModuleContext
from .findings import Finding


class Rule(abc.ABC):
    """One contract check, run once per module."""

    #: stable identifier used in reports and suppression comments.
    rule_id: str = ""
    #: one-line summary shown by ``--list-rules``.
    title: str = ""

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    RULES[cls.rule_id] = cls
    return cls


def all_rules(select: Optional[Iterable[str]] = None) -> Tuple[Rule, ...]:
    """Instantiate the registered rules, optionally restricted to the
    ``select`` ids (unknown ids raise, so typos fail loudly)."""
    # rule modules self-register on import; imported lazily so the
    # registry module itself has no import cycle with the rules.
    from . import rules as _rules  # noqa: F401  (import for side effect)

    if select is None:
        wanted: Sequence[str] = sorted(RULES)
    else:
        wanted = list(select)
        unknown = [r for r in wanted if r not in RULES]
        if unknown:
            raise KeyError(f"unknown rule ids: {', '.join(unknown)}")
    return tuple(RULES[rule_id]() for rule_id in wanted)
