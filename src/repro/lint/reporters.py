"""Text and JSON renderings of a lint run."""

from __future__ import annotations

import json

from .engine import LintResult
from .registry import RULES


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-oriented report: one line per finding, grep-friendly."""
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule}: {finding.message}"
        )
    for problem in result.problems:
        lines.append(
            f"{problem.location()}: {problem.rule}: {problem.message} "
            "(warning)"
        )
    if verbose:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule}: suppressed "
                f"({finding.suppression_reason}): {finding.message}"
            )
    lines.append(
        f"shardlint: {result.files_checked} files, "
        f"rules [{', '.join(result.rules_run)}]: "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.problems)} suppression problem(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-oriented report (the CI artifact)."""
    payload = {
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "problems": [f.as_dict() for f in result.problems],
        "summary": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "problems": len(result.problems),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    from .registry import all_rules

    all_rules()  # force registration
    lines = []
    for rule_id in sorted(RULES):
        lines.append(f"{rule_id}  {RULES[rule_id].title}")
    return "\n".join(lines)
