"""Run-level summary reports.

One call turns a simulated run into the tables an operator cares about:
what happened (transactions, convergence), how stale the decisions were
(deficits), what it cost (per-constraint maxima and the paper's bound at
the measured k), and what the outside world experienced (notifications,
thrashing, fairness).  Used by the command-line interface and handy in
notebooks.
"""

from __future__ import annotations

from typing import List

from ..apps.airline import make_airline_application, precedes
from ..apps.airline.priority import known
from ..apps.airline.theorems import corollary8
from ..core.application import Application
from ..core.execution import Execution
from ..harness.tables import Table
from .costs import cost_trajectory
from .fairness import final_order_inversions
from .kestimate import deficit_profile
from .serializability import serial_divergence
from .thrash import thrash_report


def execution_summary(
    execution: Execution, app: Application, title: str = "run summary"
) -> Table:
    """Core facts about any application's execution."""
    table = Table(title, ["quantity", "value"])
    table.add("transactions", len(execution))
    profile = deficit_profile(execution)
    table.add("max completeness deficit k", profile.max)
    table.add("mean completeness deficit", round(profile.overall.mean, 2))
    divergence = serial_divergence(execution)
    table.add(
        "complete-prefix fraction",
        round(divergence.complete_prefix_fraction, 3),
    )
    table.add(
        "decisions differing from serial run",
        len(divergence.divergent_decisions),
    )
    trajectory = cost_trajectory(execution, app)
    for name in app.constraints.names():
        table.add(f"max {name} cost", trajectory.max_cost(name))
        table.add(f"final {name} cost", trajectory.final_cost(name))
    return table


def airline_run_report(run, capacity: int) -> List[Table]:
    """Full report for an :class:`~repro.apps.airline.simulation.AirlineRun`."""
    app = make_airline_application(capacity=capacity)
    tables = [execution_summary(run.execution, app, "airline run summary")]

    e = run.execution
    profile = deficit_profile(e)
    k = profile.family_max("MOVE_UP")
    bound = corollary8(e, k, capacity)
    guarantees = Table("paper guarantees at the measured k", ["claim", "value"])
    guarantees.add("worst MOVE_UP deficit k", k)
    guarantees.add("Corollary 8 bound 900k ($)", 900 * k)
    guarantees.add(
        "max overbooking observed ($)",
        bound.details["max_overbooking_cost"],
    )
    guarantees.add("bound holds", bound.holds)
    tables.append(guarantees)

    world = Table("external world", ["quantity", "value"])
    thrash = thrash_report(run.ledger)
    world.add("notifications sent", thrash.notifications)
    world.add("passengers thrashed", thrash.thrashed_entities)
    world.add("worst per-passenger reversals", thrash.worst_entity_reversals)
    try:
        fairness = final_order_inversions(
            e, precedes, known, by_real_time=True
        )
        world.add("real-time request-order inversions", fairness.inversions)
        world.add("comparable pairs", fairness.comparable_pairs)
    except (AttributeError, AssertionError):
        # the timestamped design has its own state type; skip fairness.
        world.add("real-time request-order inversions", None)
    tables.append(world)
    return tables
