"""Measurement and analysis over executions and simulation runs."""

from .costs import CostTrajectory, cost_trajectory, normal_state_costs
from .fairness import (
    FairnessReport,
    final_order_inversions,
    priority_flips,
    request_order,
    request_real_time_order,
)
from .kestimate import (
    DeficitProfile,
    RefinedDeficits,
    deficit_profile,
    refined_deficits,
)
from .serializability import SerialDivergence, serial_divergence
from .probability import (
    CalibrationPoint,
    KDistribution,
    ProbabilisticBound,
    compose,
    verify_conditional,
    wilson_interval,
)
from .thrash import ThrashReport, thrash_report

__all__ = [
    "CalibrationPoint",
    "CostTrajectory",
    "DeficitProfile",
    "FairnessReport",
    "KDistribution",
    "ProbabilisticBound",
    "RefinedDeficits",
    "ThrashReport",
    "compose",
    "cost_trajectory",
    "deficit_profile",
    "final_order_inversions",
    "normal_state_costs",
    "priority_flips",
    "refined_deficits",
    "SerialDivergence",
    "serial_divergence",
    "request_order",
    "request_real_time_order",
    "thrash_report",
    "verify_conditional",
    "wilson_interval",
]
