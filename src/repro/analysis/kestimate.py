"""Measuring the information deficit k of a run.

The paper's conditional claims are parameterized by k — how many
preceding transactions a transaction failed to see.  Real runs don't come
with a k; this module measures it, both the plain completeness deficit
and the witness-refined deficits of Theorem 20 (only *critical* missing
transactions count), per transaction and per family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..apps.airline.state import AirlineState
from ..apps.airline.witnesses import (
    refined_overbooking_deficit,
    refined_underbooking_deficit,
)
from ..core.execution import Execution
from ..sim.metrics import Summary


@dataclass
class DeficitProfile:
    """Deficit statistics for one execution."""

    per_transaction: Tuple[int, ...]
    by_family: Dict[str, Summary]
    overall: Summary

    @property
    def max(self) -> int:
        return int(self.overall.max)

    def family_max(self, family: str) -> int:
        summary = self.by_family.get(family)
        return int(summary.max) if summary else 0


def deficit_profile(execution: Execution) -> DeficitProfile:
    """Plain completeness deficits, overall and per transaction family."""
    deficits = tuple(execution.deficit(i) for i in execution.indices)
    per_family: Dict[str, List[float]] = {}
    for i in execution.indices:
        family = execution.transactions[i].name
        per_family.setdefault(family, []).append(float(deficits[i]))
    return DeficitProfile(
        per_transaction=deficits,
        by_family={f: Summary.of(v) for f, v in per_family.items()},
        overall=Summary.of([float(d) for d in deficits]),
    )


@dataclass
class RefinedDeficits:
    """Theorem 20's witness-refined deficits for one airline execution."""

    plain: Tuple[int, ...]
    overbooking: Tuple[int, ...]
    underbooking: Tuple[int, ...]

    def max_plain(self) -> int:
        return max(self.plain, default=0)

    def max_overbooking(self) -> int:
        return max(self.overbooking, default=0)

    def max_underbooking(self) -> int:
        return max(self.underbooking, default=0)

    def mean_reduction(self) -> float:
        """Average of (plain - refined_overbooking) over transactions with
        plain deficit > 0: how much slack the refinement recovers."""
        diffs = [
            p - r
            for p, r in zip(self.plain, self.overbooking)
            if p > 0
        ]
        return sum(diffs) / len(diffs) if diffs else 0.0


def refined_deficits(execution: Execution) -> RefinedDeficits:
    """Witness-refined deficits at every transaction (airline app only)."""
    plain: List[int] = []
    over: List[int] = []
    under: List[int] = []
    for i in execution.indices:
        state = execution.actual_before(i)
        assert isinstance(state, AirlineState)
        seq = execution.updates[:i]
        kept = execution.prefixes[i]
        plain.append(execution.deficit(i))
        over.append(refined_overbooking_deficit(seq, kept, state.assigned))
        under.append(refined_underbooking_deficit(seq, kept, state.assigned))
    return RefinedDeficits(tuple(plain), tuple(over), tuple(under))
