"""Fairness measurement (Section 5.5).

Two quantities over airline executions:

* **final-order inversions** — pairs (P, Q) where REQUEST(P) preceded
  REQUEST(Q) in the serial order yet Q outranks P in the final state
  (counting only pairs where both are known at the end); the quantity
  Theorem 27 drives to zero under t-bounded delay, and the quantity the
  Section 5.5 redesign repairs;
* **priority flips over time** — how often the relative order of a pair
  changes across the actual-state trajectory (zero from the point a
  centralized agent sees both requests, by Theorem 25).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.execution import Execution

PrecedesFn = Callable[[object, object, object], bool]  # (state, p, q)


def request_order(execution: Execution) -> List[object]:
    """People in the serial (timestamp) order of their *first* REQUEST."""
    seen: Dict[object, int] = {}
    for i, txn in enumerate(execution.transactions):
        if txn.name == "REQUEST":
            person = txn.params[0]
            seen.setdefault(person, i)
    return [p for p, _ in sorted(seen.items(), key=lambda kv: kv[1])]


def request_real_time_order(execution) -> List[object]:
    """People in the *real-time* order of their first REQUEST.

    Requires a :class:`~repro.core.execution.TimedExecution`.  During
    partitions the serial (Lamport) order and the real-time order
    diverge — the execution is not *orderly* — and this, not the serial
    order, is what a passenger experiences as first-come-first-served.
    """
    seen: Dict[object, float] = {}
    for i, txn in enumerate(execution.transactions):
        if txn.name == "REQUEST":
            person = txn.params[0]
            if person not in seen:
                seen[person] = execution.times[i]
    return [p for p, _ in sorted(seen.items(), key=lambda kv: kv[1])]


@dataclass
class FairnessReport:
    comparable_pairs: int
    inversions: int
    inverted_pairs: Tuple[Tuple[object, object], ...]

    @property
    def inversion_rate(self) -> float:
        if self.comparable_pairs == 0:
            return 0.0
        return self.inversions / self.comparable_pairs


def final_order_inversions(
    execution: Execution,
    precedes: PrecedesFn,
    known: Callable[[object], Sequence],
    by_real_time: bool = False,
) -> FairnessReport:
    """Count request-order inversions in the final state.

    With ``by_real_time=True`` the reference order is the real-time order
    of first requests (needs a TimedExecution); otherwise the serial
    order."""
    final = execution.final_state
    order = (
        request_real_time_order(execution)
        if by_real_time
        else request_order(execution)
    )
    known_final = set(known(final))
    comparable = 0
    inverted: List[Tuple[object, object]] = []
    for a_pos, p in enumerate(order):
        if p not in known_final:
            continue
        for q in order[a_pos + 1:]:
            if q not in known_final:
                continue
            comparable += 1
            if precedes(final, q, p):
                inverted.append((p, q))
    return FairnessReport(comparable, len(inverted), tuple(inverted))


def priority_flips(
    execution: Execution,
    p: object,
    q: object,
    precedes: PrecedesFn,
    known: Callable[[object], Sequence],
    start: int = 0,
) -> int:
    """Number of times the relative order of ``p`` and ``q`` changes
    across actual states from index ``start`` on (states where either is
    unknown are skipped)."""
    flips = 0
    last: Optional[bool] = None
    for state in execution.actual_states[start:]:
        names = set(known(state))
        if p not in names or q not in names:
            continue
        current = precedes(state, p, q)
        if last is not None and current != last:
            flips += 1
        last = current
    return flips
