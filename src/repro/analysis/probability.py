"""The paper's deferred probabilistic analysis (Section 1.3, part (2)).

The paper proves conditional claims — "if each transaction misses at most
k predecessors, cost stays at most c(k)" — and defers the probability
that the condition holds to "an independent analysis, using information
such as delay characteristics of the message system and expected rates of
transaction processing".  This module carries that analysis out
empirically:

1. run many seeded simulations of a scenario;
2. record the per-run deficit k* (the smallest k making the relevant
   transactions k-complete) and the realized max cost;
3. form the empirical distribution of k* and compose it with the
   conditional bound f to get ``P(cost <= f(k)) >= P(k* <= k)`` — the
   probabilistic statement of the form the paper wants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.relations import CostBound


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used to put honest error bars on the empirical P(k* <= k) estimated
    from finitely many seeded runs (small-sample-safe, unlike the normal
    approximation).
    """
    if trials <= 0:
        return (0.0, 1.0)
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    # two-sided z for the given confidence via the probit of (1+c)/2;
    # inverse-erf through Newton on erf (stdlib-only).
    z = _probit((1 + confidence) / 2)
    p_hat = successes / trials
    denom = 1 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(
            p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials)
        )
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def _probit(p: float) -> float:
    """Inverse standard-normal CDF via Newton iteration on erf."""
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    x = 0.0
    for _ in range(60):
        cdf = 0.5 * (1 + math.erf(x / math.sqrt(2)))
        pdf = math.exp(-x * x / 2) / math.sqrt(2 * math.pi)
        if pdf < 1e-300:
            break
        step = (cdf - p) / pdf
        x -= step
        if abs(step) < 1e-12:
            break
    return x


@dataclass
class KDistribution:
    """Empirical distribution of the per-run deficit k*."""

    samples: Tuple[int, ...]

    def cdf(self, k: int) -> float:
        """P(k* <= k)."""
        if not self.samples:
            return 1.0
        return sum(1 for s in self.samples if s <= k) / len(self.samples)

    def cdf_interval(
        self, k: int, confidence: float = 0.95
    ) -> Tuple[float, float]:
        """Wilson confidence interval for P(k* <= k)."""
        successes = sum(1 for s in self.samples if s <= k)
        return wilson_interval(successes, len(self.samples), confidence)

    def quantile(self, p: float) -> int:
        """Smallest k with cdf(k) >= p."""
        if not 0 <= p <= 1:
            raise ValueError("p must be in [0, 1]")
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        for k in ordered:
            if self.cdf(k) >= p:
                return k
        return ordered[-1]

    @property
    def max(self) -> int:
        return max(self.samples, default=0)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0


@dataclass
class ProbabilisticBound:
    """A composed statement: with probability >= p, cost stays <= c."""

    k: int
    probability: float
    cost_limit: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"with probability >= {self.probability:.2f}, "
            f"cost remains at most {self.cost_limit:g} (k = {self.k})"
        )


def compose(
    distribution: KDistribution,
    bound: CostBound,
    ks: Optional[Sequence[int]] = None,
) -> List[ProbabilisticBound]:
    """Compose P(k* <= k) with the conditional bound f(k).

    For each k, the conditional claim guarantees cost <= f(k) whenever
    k* <= k, so P(cost <= f(k)) >= P(k* <= k).
    """
    if ks is None:
        ks = sorted(set(distribution.samples)) or [0]
    return [
        ProbabilisticBound(k, distribution.cdf(k), bound(k)) for k in ks
    ]


@dataclass
class CalibrationPoint:
    """One simulated run's (k*, realized max cost) pair."""

    k_star: int
    max_cost: float


def verify_conditional(
    points: Sequence[CalibrationPoint], bound: CostBound
) -> bool:
    """Sanity check: every run's realized cost respects f(its own k*).

    This is the empirical footprint of the conditional theorem; it must
    hold on every run or the model implementation is wrong.
    """
    return all(p.max_cost <= bound(p.k_star) + 1e-9 for p in points)
