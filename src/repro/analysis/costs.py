"""Cost trajectory analysis over executions.

Turns an execution plus an application's constraints into per-step cost
series and summaries — the quantities all the cost-bound experiments
report (max over reachable states, max over normal states, final cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.application import Application
from ..core.execution import Execution
from ..core.grouping import Grouping


@dataclass
class CostTrajectory:
    """Per-constraint cost at every actual state of an execution."""

    constraint_names: Tuple[str, ...]
    #: series[name][i] = cost of actual_states[i] for that constraint.
    series: Dict[str, List[float]]

    def max_cost(self, name: str) -> float:
        return max(self.series[name], default=0.0)

    def final_cost(self, name: str) -> float:
        return self.series[name][-1] if self.series[name] else 0.0

    def max_total(self) -> float:
        if not self.constraint_names:
            return 0.0
        length = len(next(iter(self.series.values())))
        return max(
            (
                sum(self.series[name][i] for name in self.constraint_names)
                for i in range(length)
            ),
            default=0.0,
        )

    def argmax(self, name: str) -> Optional[int]:
        values = self.series[name]
        if not values:
            return None
        return max(range(len(values)), key=values.__getitem__)

    def nonzero_fraction(self, name: str) -> float:
        values = self.series[name]
        if not values:
            return 0.0
        return sum(1 for v in values if v > 0) / len(values)


def cost_trajectory(execution: Execution, app: Application) -> CostTrajectory:
    """Evaluate every constraint at every actual state."""
    names = app.constraints.names()
    series: Dict[str, List[float]] = {name: [] for name in names}
    for state in execution.actual_states:
        for name in names:
            series[name].append(app.constraints[name].cost(state))
    return CostTrajectory(names, series)


def normal_state_costs(
    execution: Execution, grouping: Grouping, app: Application
) -> Dict[str, float]:
    """Max per-constraint cost over the grouping's normal states."""
    normal = grouping.normal_states(execution)
    return {
        name: max((app.constraints[name].cost(s) for s in normal), default=0.0)
        for name in app.constraints.names()
    }
