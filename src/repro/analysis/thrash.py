"""Thrashing measurement (the Section 3.1 danger).

Thrashing is the repeated granting and rescinding of the same resource to
the same entity: MOVE_UP informs P of a seat, a MOVE_DOWN (possibly
elsewhere) rescinds it, another MOVE_UP re-grants it, and so on.  It is
doubly bad: wasted work *and* conflicting external actions the system can
never take back.  We measure it from the external-action ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..apps.airline.transactions import INFORM_ASSIGNED, INFORM_WAITLISTED
from ..shard.external import ExternalLedger


@dataclass
class ThrashReport:
    """Per-run thrashing summary."""

    #: entities that received at least one notification.
    entities: int
    #: total notifications sent.
    notifications: int
    #: per-entity count of grant->rescind and rescind->grant reversals.
    reversals_by_entity: Dict[object, int]

    @property
    def total_reversals(self) -> int:
        return sum(self.reversals_by_entity.values())

    @property
    def worst_entity_reversals(self) -> int:
        return max(self.reversals_by_entity.values(), default=0)

    @property
    def thrashed_entities(self) -> int:
        """Entities whose seat was rescinded at least once after a grant."""
        return sum(1 for v in self.reversals_by_entity.values() if v > 0)


def thrash_report(
    ledger: ExternalLedger,
    grant_kind: str = INFORM_ASSIGNED,
    rescind_kind: str = INFORM_WAITLISTED,
) -> ThrashReport:
    """Count notification reversals per entity from a ledger."""
    reversals: Dict[object, int] = {}
    notifications = 0
    for target, entries in ledger.by_target().items():
        kinds = [
            e.action.kind
            for e in entries
            if e.action.kind in (grant_kind, rescind_kind)
        ]
        notifications += len(kinds)
        count = sum(1 for a, b in zip(kinds, kinds[1:]) if a != b)
        if kinds:
            reversals[target] = count
    return ThrashReport(
        entities=len(reversals),
        notifications=notifications,
        reversals_by_entity=reversals,
    )
