"""Measuring how far an execution is from serializable.

Serializability's "all-or-nothing character" is the paper's foil: an
execution either is serializable or nothing can be said.  These metrics
quantify the gap for SHARD executions:

* the fraction of transactions that ran with complete prefixes (a
  complete-prefix execution *is* the serial execution of its order);
* the divergence against the serial counterfactual — replaying the same
  transactions, in the same order, with complete prefixes — in decisions
  taken, external actions emitted, and the final state.

The counterfactual is exactly what a coordinated (serializable) system
would have produced for this arrival order, so the divergence is the
semantic price of availability on this particular run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.execution import Execution


@dataclass
class SerialDivergence:
    """The gap between an execution and its serial counterfactual."""

    n_transactions: int
    complete_prefix_count: int
    #: indices whose generated update differs from the serial replay's.
    divergent_decisions: Tuple[int, ...]
    #: indices whose external actions differ from the serial replay's.
    divergent_external_actions: Tuple[int, ...]
    final_states_equal: bool

    @property
    def complete_prefix_fraction(self) -> float:
        if self.n_transactions == 0:
            return 1.0
        return self.complete_prefix_count / self.n_transactions

    @property
    def decision_divergence_fraction(self) -> float:
        if self.n_transactions == 0:
            return 0.0
        return len(self.divergent_decisions) / self.n_transactions

    @property
    def is_serial(self) -> bool:
        """True iff the run is indistinguishable from the serial one."""
        return (
            not self.divergent_decisions
            and not self.divergent_external_actions
            and self.final_states_equal
        )


def serial_divergence(execution: Execution) -> SerialDivergence:
    """Compare an execution against its complete-prefix counterfactual."""
    serial = Execution.run(
        execution.initial_state,
        execution.transactions,
        [tuple(range(i)) for i in range(len(execution))],
    )
    divergent_decisions = tuple(
        i for i in execution.indices
        if execution.updates[i] != serial.updates[i]
    )
    divergent_externals = tuple(
        i for i in execution.indices
        if execution.external_actions[i] != serial.external_actions[i]
    )
    complete = sum(1 for i in execution.indices if execution.deficit(i) == 0)
    return SerialDivergence(
        n_transactions=len(execution),
        complete_prefix_count=complete,
        divergent_decisions=divergent_decisions,
        divergent_external_actions=divergent_externals,
        final_states_equal=execution.final_state == serial.final_state,
    )
