"""Inventory updates and transactions.

The transaction vocabulary mirrors the paper's claim that "practically
all resource allocation systems must have operations of the four kinds"
(request / cancel / allocate / deallocate), plus the inventory-specific
restock and ship operations that move the capacity itself:

* ``ORDER(id)`` / ``CANCEL_ORDER(id)`` — request and cancel (trivial
  decisions);
* ``COMMIT`` — allocate: if the observed state has free stock and a
  backorder, promise the first backordered order a unit (external
  confirmation) — unsafe for over-commitment but preserves its cost;
* ``RENEGE`` — deallocate: if over-committed, push the last committed
  order back to the head of the backorder list (compensator for
  over-commitment);
* ``RESTOCK(n)`` — stock += n (safe for over-commitment, raises the
  moving capacity);
* ``SHIP`` — ship one unit for the first committed order: removes the
  commitment *and* decrements stock, if stock is observed available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.state import State
from ...core.transaction import Decision, ExternalAction, Transaction
from ...core.update import IDENTITY, Update
from .state import InventoryState, OrderId

CONFIRMED = "order_confirmed"
RESCINDED = "order_rescinded"
SHIPPED = "order_shipped"


@dataclass(frozen=True, repr=False)
class OrderUpdate(Update):
    order: OrderId
    name = "order"

    @property
    def params(self) -> Tuple:
        return (self.order,)

    def apply(self, state: State) -> InventoryState:
        assert isinstance(state, InventoryState)
        if state.is_known(self.order):
            return state
        return InventoryState(
            state.stock, state.committed, state.backorders + (self.order,)
        )


@dataclass(frozen=True, repr=False)
class CancelOrderUpdate(Update):
    order: OrderId
    name = "cancel_order"

    @property
    def params(self) -> Tuple:
        return (self.order,)

    def apply(self, state: State) -> InventoryState:
        assert isinstance(state, InventoryState)
        if not state.is_known(self.order):
            return state
        return InventoryState(
            state.stock,
            tuple(o for o in state.committed if o != self.order),
            tuple(o for o in state.backorders if o != self.order),
        )


@dataclass(frozen=True, repr=False)
class CommitUpdate(Update):
    """Move a backordered order to the end of the committed list."""

    order: OrderId
    name = "commit"

    @property
    def params(self) -> Tuple:
        return (self.order,)

    def apply(self, state: State) -> InventoryState:
        assert isinstance(state, InventoryState)
        if not state.is_backordered(self.order):
            return state
        return InventoryState(
            state.stock,
            state.committed + (self.order,),
            tuple(o for o in state.backorders if o != self.order),
        )


@dataclass(frozen=True, repr=False)
class RenegeUpdate(Update):
    """Move a committed order back to the head of the backorder list
    (head insertion preserves its priority over plain backorders, exactly
    like the airline move_down)."""

    order: OrderId
    name = "renege"

    @property
    def params(self) -> Tuple:
        return (self.order,)

    def apply(self, state: State) -> InventoryState:
        assert isinstance(state, InventoryState)
        if not state.is_committed(self.order):
            return state
        return InventoryState(
            state.stock,
            tuple(o for o in state.committed if o != self.order),
            (self.order,) + state.backorders,
        )


@dataclass(frozen=True, repr=False)
class RestockUpdate(Update):
    amount: int
    name = "restock"

    @property
    def params(self) -> Tuple:
        return (self.amount,)

    def apply(self, state: State) -> InventoryState:
        assert isinstance(state, InventoryState)
        return InventoryState(
            state.stock + self.amount, state.committed, state.backorders
        )


@dataclass(frozen=True, repr=False)
class ShipUpdate(Update):
    """Remove a committed order and one unit of stock (floored at 0)."""

    order: OrderId
    name = "ship"

    @property
    def params(self) -> Tuple:
        return (self.order,)

    def apply(self, state: State) -> InventoryState:
        assert isinstance(state, InventoryState)
        if not state.is_committed(self.order):
            return state
        return InventoryState(
            max(0, state.stock - 1),
            tuple(o for o in state.committed if o != self.order),
            state.backorders,
        )


@dataclass(frozen=True, repr=False)
class Order(Transaction):
    order: OrderId
    name = "ORDER"

    @property
    def params(self) -> Tuple:
        return (self.order,)

    def decide(self, state: State) -> Decision:
        return Decision(OrderUpdate(self.order))


@dataclass(frozen=True, repr=False)
class CancelOrder(Transaction):
    order: OrderId
    name = "CANCEL_ORDER"

    @property
    def params(self) -> Tuple:
        return (self.order,)

    def decide(self, state: State) -> Decision:
        return Decision(CancelOrderUpdate(self.order))


@dataclass(frozen=True, repr=False)
class Commit(Transaction):
    """Confirm the first backordered order if stock appears free."""

    name = "COMMIT"

    def decide(self, state: State) -> Decision:
        assert isinstance(state, InventoryState)
        if state.n_committed < state.stock and state.n_backorders > 0:
            order = state.backorders[0]
            return Decision(
                CommitUpdate(order), (ExternalAction(CONFIRMED, order),)
            )
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class Renege(Transaction):
    """Rescind the last confirmation if over-committed."""

    name = "RENEGE"

    def decide(self, state: State) -> Decision:
        assert isinstance(state, InventoryState)
        if state.n_committed > state.stock:
            order = state.committed[-1]
            return Decision(
                RenegeUpdate(order), (ExternalAction(RESCINDED, order),)
            )
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class Restock(Transaction):
    amount: int
    name = "RESTOCK"

    @property
    def params(self) -> Tuple:
        return (self.amount,)

    def decide(self, state: State) -> Decision:
        return Decision(RestockUpdate(self.amount))


@dataclass(frozen=True, repr=False)
class Ship(Transaction):
    """Ship the first committed order if stock is observed on hand."""

    name = "SHIP"

    def decide(self, state: State) -> Decision:
        assert isinstance(state, InventoryState)
        if state.committed and state.stock > 0:
            order = state.committed[0]
            return Decision(
                ShipUpdate(order), (ExternalAction(SHIPPED, order),)
            )
        return Decision(IDENTITY)
