"""Running the inventory application on the simulated SHARD system.

Orders arrive at random sales nodes; restocks land at the warehouse
node; commit/renege/ship sweeps run either at every node (fully
available) or only at the warehouse (the centralized-agent policy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ...core.execution import TimedExecution
from ...network.broadcast import BroadcastConfig
from ...network.link import DelayModel, UniformDelay
from ...network.partition import PartitionSchedule
from ...shard.cluster import ClusterConfig, ShardCluster
from ...shard.external import ExternalLedger
from ...shard.workload import PeriodicSubmitter, PoissonSubmitter
from .operations import CancelOrder, Commit, Order, Renege, Restock, Ship
from .state import INITIAL_INVENTORY_STATE, InventoryState


@dataclass
class InventoryScenario:
    n_nodes: int = 3
    duration: float = 120.0
    order_rate: float = 1.2
    cancel_fraction: float = 0.1
    restock_fraction: float = 0.2
    max_restock: int = 3
    sweep_interval: float = 2.0
    sweep_nodes: Optional[Sequence[int]] = None  # None = every node
    warehouse_node: int = 0
    seed: int = 0
    delay: Optional[DelayModel] = None
    partitions: Optional[PartitionSchedule] = None
    broadcast: Optional[BroadcastConfig] = None


@dataclass
class InventoryRun:
    scenario: InventoryScenario
    cluster: ShardCluster
    execution: TimedExecution
    final_state: InventoryState
    ledger: ExternalLedger


class _InventoryArrivals:
    """Order/cancel arrivals; restocks are routed to the warehouse."""

    def __init__(self, scenario: InventoryScenario, cluster: ShardCluster):
        self.scenario = scenario
        self.cluster = cluster
        self.next_order = 0
        self.open_orders: list = []

    def __call__(self, rng: random.Random):
        s = self.scenario
        roll = rng.random()
        if roll < s.restock_fraction:
            # restocks always happen at the warehouse.
            self.cluster.submit(
                s.warehouse_node, Restock(rng.randint(1, s.max_restock))
            )
            return None
        if self.open_orders and roll < s.restock_fraction + s.cancel_fraction:
            return CancelOrder(rng.choice(self.open_orders))
        self.next_order += 1
        order = f"o{self.next_order}"
        self.open_orders.append(order)
        return Order(order)


def run_inventory_scenario(scenario: InventoryScenario) -> InventoryRun:
    cluster = ShardCluster(
        INITIAL_INVENTORY_STATE,
        ClusterConfig(
            n_nodes=scenario.n_nodes,
            seed=scenario.seed,
            delay=scenario.delay or UniformDelay(0.2, 1.0),
            partitions=scenario.partitions,
            broadcast=scenario.broadcast,
        ),
    )
    arrivals = PoissonSubmitter(
        cluster,
        rate=scenario.order_rate,
        make_transaction=_InventoryArrivals(scenario, cluster),
        rng=cluster.streams.stream("arrivals"),
        stop_at=scenario.duration,
    )
    sweep_nodes = (
        list(scenario.sweep_nodes)
        if scenario.sweep_nodes is not None
        else list(range(scenario.n_nodes))
    )
    sweeps = PeriodicSubmitter(
        cluster,
        interval=scenario.sweep_interval,
        make_transactions=lambda: (Commit(), Renege(), Ship()),
        nodes=sweep_nodes,
        stop_at=scenario.duration,
    )
    arrivals.start()
    sweeps.start()
    cluster.run(until=scenario.duration)
    cluster.quiesce()
    execution = cluster.extract_execution()
    final_state = cluster.nodes[0].state
    assert isinstance(final_state, InventoryState)
    return InventoryRun(
        scenario=scenario,
        cluster=cluster,
        execution=execution,
        final_state=final_state,
        ledger=cluster.ledger,
    )
