"""Inventory-control database states.

Inventory control is the third motivating application named in the
paper's abstract and introduction.  It generalizes the airline example in
one interesting way: the "capacity" (stock on hand) *changes over time*
via restocks and shipments, so the over-allocation constraint is a moving
target rather than a fixed 100.

A state holds:

* ``stock`` — units physically on hand;
* ``committed`` — ordered list of order ids promised a unit (customers
  have been told their order is confirmed — an external action);
* ``backorders`` — ordered list of order ids waiting for stock.

Well-formedness: an order id appears at most once across both lists and
stock is nonnegative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.state import State

OrderId = str


@dataclass(frozen=True)
class InventoryState(State):
    stock: int = 0
    committed: Tuple[OrderId, ...] = ()
    backorders: Tuple[OrderId, ...] = ()

    def well_formed(self) -> bool:
        committed, backorders = set(self.committed), set(self.backorders)
        return (
            self.stock >= 0
            and len(committed) == len(self.committed)
            and len(backorders) == len(self.backorders)
            and not (committed & backorders)
        )

    @property
    def n_committed(self) -> int:
        return len(self.committed)

    @property
    def n_backorders(self) -> int:
        return len(self.backorders)

    def is_committed(self, order: OrderId) -> bool:
        return order in self.committed

    def is_backordered(self, order: OrderId) -> bool:
        return order in self.backorders

    def is_known(self, order: OrderId) -> bool:
        return order in self.committed or order in self.backorders


INITIAL_INVENTORY_STATE = InventoryState()
