"""Assembly of the inventory application: the two constraints mirror the
airline's, but against a *moving* capacity (the current stock)."""

from __future__ import annotations

from ...core.application import Application
from ...core.constraint import IntegrityConstraint
from ...core.monus import monus
from ...core.relations import CostBound, linear_bound
from ...core.state import State
from .state import INITIAL_INVENTORY_STATE, InventoryState

OVERCOMMIT = "overcommit"
UNDERFILL = "underfill"

#: default cost per over-committed unit (expedited procurement).
DEFAULT_OVERCOMMIT_COST = 50.0
#: default cost per avoidably unfilled backorder (missed sale).
DEFAULT_UNDERFILL_COST = 20.0


class OvercommitConstraint(IntegrityConstraint):
    """Confirmed orders should not exceed stock on hand."""

    name = OVERCOMMIT

    def __init__(self, unit_cost: float = DEFAULT_OVERCOMMIT_COST):
        self.unit_cost = unit_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, InventoryState)
        return self.unit_cost * monus(state.n_committed, state.stock)


class UnderfillConstraint(IntegrityConstraint):
    """Backorders should not wait while free stock sits on the shelf."""

    name = UNDERFILL

    def __init__(self, unit_cost: float = DEFAULT_UNDERFILL_COST):
        self.unit_cost = unit_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, InventoryState)
        return self.unit_cost * min(
            monus(state.stock, state.n_committed), state.n_backorders
        )


def make_inventory_application(
    overcommit_cost: float = DEFAULT_OVERCOMMIT_COST,
    underfill_cost: float = DEFAULT_UNDERFILL_COST,
) -> Application:
    return Application(
        name="inventory",
        initial_state=INITIAL_INVENTORY_STATE,
        constraints=(
            OvercommitConstraint(overcommit_cost),
            UnderfillConstraint(underfill_cost),
        ),
        transaction_families=(
            "ORDER", "CANCEL_ORDER", "COMMIT", "RENEGE", "RESTOCK", "SHIP",
        ),
    )


def overcommit_bound(
    unit_cost: float = DEFAULT_OVERCOMMIT_COST,
) -> CostBound:
    """Among the update families, only ``commit`` raises the excess of
    commitments over stock, by one unit — so f(k) = unit_cost * k."""
    return linear_bound(OVERCOMMIT, unit_cost)


def underfill_bound(unit_cost: float = DEFAULT_UNDERFILL_COST) -> CostBound:
    return linear_bound(UNDERFILL, unit_cost)
