"""Banking updates and transactions.

The decision/update split mirrors the airline example:

* ``DEPOSIT(a, n)`` — trivial decision; the ``credit(a, n)`` update is
  safe for the overdraft constraint;
* ``WITHDRAW(a, n)`` — the decision dispenses cash (an irreversible
  external action!) only if the *observed* balance covers it; the
  ``debit(a, n)`` update subtracts unconditionally when replayed, which
  is what can overdraw — unsafe but cost-preserving, the analogue of
  MOVE_UP;
* ``TRANSFER(a, b, n)`` — decided like a withdrawal, updates both sides;
* ``COVER(a)`` — the compensating transaction: the bank extends credit
  to zero out an observed overdraft (cost strictly decreases);
* ``AUDIT`` — reads the total balance and reports it externally; identity
  update.  The paper suggests running audits with complete prefixes
  (Section 3.2); the banking bench checks audit accuracy against the
  audit's completeness deficit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.state import State
from ...core.transaction import Decision, ExternalAction, Transaction
from ...core.update import IDENTITY, Update
from .state import Account, BankState

DISPENSE = "dispense_cash"
TRANSFER_CONFIRMED = "transfer_confirmed"
CREDIT_EXTENDED = "credit_extended"
AUDIT_REPORT = "audit_report"


@dataclass(frozen=True, repr=False)
class CreditUpdate(Update):
    """``credit(a, n)``: add n to a's balance."""

    account: Account
    amount: int
    name = "credit"

    @property
    def params(self) -> Tuple:
        return (self.account, self.amount)

    def apply(self, state: State) -> BankState:
        assert isinstance(state, BankState)
        return state.adjust(self.account, self.amount)


@dataclass(frozen=True, repr=False)
class DebitUpdate(Update):
    """``debit(a, n)``: subtract n from a's balance, unconditionally.

    The cash already left the ATM when the decision ran; the database
    must record the debit no matter what state it is replayed against.
    """

    account: Account
    amount: int
    name = "debit"

    @property
    def params(self) -> Tuple:
        return (self.account, self.amount)

    def apply(self, state: State) -> BankState:
        assert isinstance(state, BankState)
        return state.adjust(self.account, -self.amount)


@dataclass(frozen=True, repr=False)
class TransferUpdate(Update):
    """``transfer(a, b, n)``: debit a, credit b."""

    source: Account
    target: Account
    amount: int
    name = "transfer"

    @property
    def params(self) -> Tuple:
        return (self.source, self.target, self.amount)

    def apply(self, state: State) -> BankState:
        assert isinstance(state, BankState)
        return state.adjust(self.source, -self.amount).adjust(
            self.target, self.amount
        )


@dataclass(frozen=True, repr=False)
class Deposit(Transaction):
    account: Account
    amount: int
    name = "DEPOSIT"

    @property
    def params(self) -> Tuple:
        return (self.account, self.amount)

    def decide(self, state: State) -> Decision:
        return Decision(CreditUpdate(self.account, self.amount))


@dataclass(frozen=True, repr=False)
class Withdraw(Transaction):
    """Dispense cash iff the observed balance covers the amount."""

    account: Account
    amount: int
    name = "WITHDRAW"

    @property
    def params(self) -> Tuple:
        return (self.account, self.amount)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, BankState)
        if state.balance(self.account) >= self.amount:
            return Decision(
                DebitUpdate(self.account, self.amount),
                (ExternalAction(DISPENSE, self.account, (self.amount,)),),
            )
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class Transfer(Transaction):
    source: Account
    target: Account
    amount: int
    name = "TRANSFER"

    @property
    def params(self) -> Tuple:
        return (self.source, self.target, self.amount)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, BankState)
        if state.balance(self.source) >= self.amount:
            return Decision(
                TransferUpdate(self.source, self.target, self.amount),
                (
                    ExternalAction(
                        TRANSFER_CONFIRMED,
                        self.source,
                        (self.target, self.amount),
                    ),
                ),
            )
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class Cover(Transaction):
    """Compensating transaction: extend credit to clear an observed
    overdraft on a specific account."""

    account: Account
    name = "COVER"

    @property
    def params(self) -> Tuple:
        return (self.account,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, BankState)
        balance = state.balance(self.account)
        if balance < 0:
            return Decision(
                CreditUpdate(self.account, -balance),
                (ExternalAction(CREDIT_EXTENDED, self.account, (-balance,)),),
            )
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class CoverWorst(Transaction):
    """Compensator that targets the most overdrawn account it can see."""

    name = "COVER_WORST"

    def decide(self, state: State) -> Decision:
        assert isinstance(state, BankState)
        overdrawn = state.overdrawn()
        if not overdrawn:
            return Decision(IDENTITY)
        account, deficit = max(overdrawn, key=lambda pair: pair[1])
        return Decision(
            CreditUpdate(account, deficit),
            (ExternalAction(CREDIT_EXTENDED, account, (deficit,)),),
        )


@dataclass(frozen=True, repr=False)
class Audit(Transaction):
    """Report the observed total balance; changes nothing."""

    name = "AUDIT"

    def decide(self, state: State) -> Decision:
        assert isinstance(state, BankState)
        return Decision(
            IDENTITY,
            (ExternalAction(AUDIT_REPORT, None, (state.total,)),),
        )
