"""Running the banking application on the simulated SHARD system.

Deposits and withdrawals arrive at random branches (nodes); withdrawals
dispense cash against the local — possibly stale — balance.  Audits run
periodically at a designated branch, in either *available* mode (plain
initiation, stale totals) or *synchronized* mode (the Section 3.2/6
mixed-mode path, exact but partition-sensitive).  An optional COVER_WORST
sweep compensates observed overdrafts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ...core.execution import TimedExecution
from ...network.broadcast import BroadcastConfig
from ...network.link import DelayModel, UniformDelay
from ...network.partition import PartitionSchedule
from ...shard.cluster import ClusterConfig, ShardCluster
from ...shard.external import ExternalLedger
from ...shard.workload import PeriodicSubmitter, PoissonSubmitter
from .application import DEFAULT_ACCOUNTS
from .operations import Audit, CoverWorst, Deposit, Withdraw
from .state import INITIAL_BANK_STATE, BankState


@dataclass
class BankingScenario:
    accounts: Sequence[str] = DEFAULT_ACCOUNTS
    n_nodes: int = 3
    duration: float = 120.0
    arrival_rate: float = 1.5
    deposit_fraction: float = 0.45
    max_amount: int = 20
    initial_deposit: int = 100
    audit_interval: float = 15.0
    audit_node: int = 0
    synchronized_audits: bool = False
    cover_interval: Optional[float] = None  # None = no compensation sweep
    seed: int = 0
    delay: Optional[DelayModel] = None
    partitions: Optional[PartitionSchedule] = None
    broadcast: Optional[BroadcastConfig] = None


@dataclass
class BankingRun:
    scenario: BankingScenario
    cluster: ShardCluster
    execution: TimedExecution
    final_state: BankState
    ledger: ExternalLedger


class _BankArrivals:
    def __init__(self, scenario: BankingScenario):
        self.scenario = scenario

    def __call__(self, rng: random.Random):
        s = self.scenario
        account = rng.choice(list(s.accounts))
        amount = rng.randint(1, s.max_amount)
        if rng.random() < s.deposit_fraction:
            return Deposit(account, amount)
        return Withdraw(account, amount)


def run_banking_scenario(scenario: BankingScenario) -> BankingRun:
    cluster = ShardCluster(
        INITIAL_BANK_STATE,
        ClusterConfig(
            n_nodes=scenario.n_nodes,
            seed=scenario.seed,
            delay=scenario.delay or UniformDelay(0.2, 1.0),
            partitions=scenario.partitions,
            broadcast=scenario.broadcast,
        ),
    )
    # seed the accounts at node 0 before the open-loop traffic starts.
    for account in scenario.accounts:
        cluster.submit(0, Deposit(account, scenario.initial_deposit), at=0.0)

    arrivals = PoissonSubmitter(
        cluster,
        rate=scenario.arrival_rate,
        make_transaction=_BankArrivals(scenario),
        rng=cluster.streams.stream("arrivals"),
        stop_at=scenario.duration,
    )
    arrivals.start()

    def submit_audit() -> None:
        if scenario.synchronized_audits:
            cluster.submit_synchronized(scenario.audit_node, Audit())
        else:
            cluster.submit(scenario.audit_node, Audit())

    def audit_tick(next_at: float) -> None:
        if next_at > scenario.duration:
            return
        cluster.sim.schedule_at(next_at, lambda: (
            submit_audit(), audit_tick(next_at + scenario.audit_interval),
        ))

    audit_tick(scenario.audit_interval)

    if scenario.cover_interval is not None:
        covers = PeriodicSubmitter(
            cluster,
            interval=scenario.cover_interval,
            make_transactions=lambda: (CoverWorst(),),
            nodes=list(range(scenario.n_nodes)),
            stop_at=scenario.duration,
        )
        covers.start()

    cluster.run(until=scenario.duration)
    cluster.quiesce()
    execution = cluster.extract_execution()
    final_state = cluster.nodes[0].state
    assert isinstance(final_state, BankState)
    return BankingRun(
        scenario=scenario,
        cluster=cluster,
        execution=execution,
        final_state=final_state,
        ledger=cluster.ledger,
    )
