"""Assembly of the banking application.

The integrity constraints are *per account*: "account a is not
overdrawn", costing ``unit_cost`` per overdrawn cent.  Per-account
indexing (rather than one global constraint) is what makes the paper's
property structure land exactly as in the airline example:

* ``WITHDRAW(a, n)`` is **unsafe** for a's constraint (its debit can
  overdraw when replayed) but **preserves its cost** — it only fires when
  the observed balance covers the amount, so the state it believes it
  creates has a >= 0;
* ``WITHDRAW(a, n)`` is **safe** for every other account's constraint
  (the debit never touches them).

With one aggregated constraint the strong preserves-cost property would
fail vacuously whenever some unrelated account was already overdrawn.
The application's total cost is the sum over the per-account constraints,
i.e. the total overdraft.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ...core.application import Application
from ...core.constraint import IntegrityConstraint
from ...core.monus import monus
from ...core.relations import CostBound, linear_bound
from ...core.state import State
from .state import Account, INITIAL_BANK_STATE, BankState

#: default penalty per overdrawn cent.
DEFAULT_OVERDRAFT_COST = 1.0

#: default account universe used by workloads and examples.
DEFAULT_ACCOUNTS: Tuple[Account, ...] = ("alice", "bob", "carol")


def overdraft_constraint_name(account: Account) -> str:
    return f"overdraft:{account}"


class OverdraftConstraint(IntegrityConstraint):
    """Account ``account`` should not be overdrawn."""

    def __init__(
        self, account: Account, unit_cost: float = DEFAULT_OVERDRAFT_COST
    ):
        self.account = account
        self.unit_cost = unit_cost
        self.name = overdraft_constraint_name(account)

    def cost(self, state: State) -> float:
        assert isinstance(state, BankState)
        return self.unit_cost * monus(0, state.balance(self.account))


def make_banking_application(
    accounts: Sequence[Account] = DEFAULT_ACCOUNTS,
    unit_cost: float = DEFAULT_OVERDRAFT_COST,
) -> Application:
    """The banking application over a fixed account universe."""
    return Application(
        name="banking",
        initial_state=INITIAL_BANK_STATE,
        constraints=tuple(
            OverdraftConstraint(a, unit_cost) for a in accounts
        ),
        transaction_families=(
            "DEPOSIT", "WITHDRAW", "TRANSFER", "COVER", "COVER_WORST",
            "AUDIT",
        ),
    )


def overdraft_bound(
    max_withdrawal: int, unit_cost: float = DEFAULT_OVERDRAFT_COST
) -> CostBound:
    """Each missing update can hide at most one debit of at most
    ``max_withdrawal``, so f(k) = unit_cost * max_withdrawal * k."""
    return linear_bound("overdraft", unit_cost * max_withdrawal)
