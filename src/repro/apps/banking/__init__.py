"""The banking application: deposits, withdrawals, transfers, audits, and
the per-account overdraft constraints (Sections 1.1, 3.2)."""

from .application import (
    DEFAULT_ACCOUNTS,
    DEFAULT_OVERDRAFT_COST,
    OverdraftConstraint,
    make_banking_application,
    overdraft_bound,
    overdraft_constraint_name,
)
from .operations import (
    AUDIT_REPORT,
    Audit,
    CREDIT_EXTENDED,
    Cover,
    CoverWorst,
    CreditUpdate,
    DISPENSE,
    DebitUpdate,
    Deposit,
    TRANSFER_CONFIRMED,
    Transfer,
    TransferUpdate,
    Withdraw,
)
from .state import Account, BankState, INITIAL_BANK_STATE

__all__ = [
    "AUDIT_REPORT",
    "Account",
    "Audit",
    "BankState",
    "CREDIT_EXTENDED",
    "Cover",
    "CoverWorst",
    "CreditUpdate",
    "DEFAULT_ACCOUNTS",
    "DEFAULT_OVERDRAFT_COST",
    "DISPENSE",
    "DebitUpdate",
    "Deposit",
    "INITIAL_BANK_STATE",
    "OverdraftConstraint",
    "TRANSFER_CONFIRMED",
    "Transfer",
    "TransferUpdate",
    "Withdraw",
    "make_banking_application",
    "overdraft_bound",
    "overdraft_constraint_name",
]
