"""Banking database states.

The paper repeatedly cites banking as a motivating resource-allocation
application (Sections 1.1, 3.2: "an audit transaction in a high-finance
banking system ... might be desirable for audits to see the effects of
all the preceding deposit, withdrawal and transfer transactions").

A state maps account names to integer balances (cents).  Balances may go
*negative* — that is the integrity violation this application prices, the
analogue of overbooking: a withdrawal decided against a stale balance can
overdraw when replayed after earlier-timestamped withdrawals arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.state import State

Account = str


@dataclass(frozen=True)
class BankState(State):
    """Immutable account-to-balance map, stored sorted by account name."""

    accounts: Tuple[Tuple[Account, int], ...] = ()

    def well_formed(self) -> bool:
        names = [name for name, _ in self.accounts]
        return names == sorted(names) and len(set(names)) == len(names)

    def balance(self, account: Account) -> int:
        """The balance of ``account``; 0 if it has never been touched."""
        for name, value in self.accounts:
            if name == account:
                return value
        return 0

    def with_balance(self, account: Account, value: int) -> "BankState":
        entries = dict(self.accounts)
        entries[account] = value
        return BankState(tuple(sorted(entries.items())))

    def adjust(self, account: Account, delta: int) -> "BankState":
        return self.with_balance(account, self.balance(account) + delta)

    @property
    def total(self) -> int:
        return sum(value for _, value in self.accounts)

    def overdrawn(self) -> Tuple[Tuple[Account, int], ...]:
        """Accounts with negative balances (name, deficit)."""
        return tuple(
            (name, -value) for name, value in self.accounts if value < 0
        )

    @property
    def total_overdraft(self) -> int:
        return sum(deficit for _, deficit in self.overdrawn())


INITIAL_BANK_STATE = BankState()
