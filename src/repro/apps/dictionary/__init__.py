"""The highly available replicated dictionary ([FM]) in the SHARD model.

Section 6 points at Fischer & Michael's replicated dictionary as an
example that "fits the SHARD framework".  We express it directly:

* the state is a set of entries plus a set of tombstones;
* ``insert(x)`` / ``delete(x)`` updates; deletion uses a tombstone so
  that an insert replayed after (in timestamp order, before) its delete
  does not resurrect the entry — the FM semantics: x is a member iff some
  insert(x) is not followed by a delete(x);
* ``QUERY`` is a pure decision transaction reporting the observed
  membership — with partial prefixes, the FM guarantee is exactly the
  prefix-subsequence property: every query returns the members of *some*
  subsequence of the preceding operations;
* a bounded-capacity constraint prices oversized dictionaries, giving
  the cost-bound machinery something to measure (INSERT checks the
  observed size, so it is unsafe-but-cost-preserving, like MOVE_UP).
"""

from .dictionary import (
    CAPACITY_CONSTRAINT,
    DEFAULT_DICT_CAPACITY,
    DEFAULT_OVERSIZE_COST,
    Delete,
    DeleteUpdate,
    DictState,
    INITIAL_DICT_STATE,
    Insert,
    InsertUpdate,
    Prune,
    QUERY_REPORT,
    Query,
    SizeConstraint,
    make_dictionary_application,
    oversize_bound,
)

__all__ = [
    "CAPACITY_CONSTRAINT",
    "DEFAULT_DICT_CAPACITY",
    "DEFAULT_OVERSIZE_COST",
    "Delete",
    "DeleteUpdate",
    "DictState",
    "INITIAL_DICT_STATE",
    "Insert",
    "InsertUpdate",
    "Prune",
    "QUERY_REPORT",
    "Query",
    "SizeConstraint",
    "make_dictionary_application",
    "oversize_bound",
]
