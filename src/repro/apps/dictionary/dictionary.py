"""Implementation of the replicated dictionary (see package docstring)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ...core.application import Application
from ...core.constraint import IntegrityConstraint
from ...core.monus import monus
from ...core.relations import CostBound, linear_bound
from ...core.state import State
from ...core.transaction import Decision, ExternalAction, Transaction
from ...core.update import IDENTITY, Update

CAPACITY_CONSTRAINT = "oversize"
QUERY_REPORT = "query_report"

DEFAULT_DICT_CAPACITY = 100
DEFAULT_OVERSIZE_COST = 1.0


@dataclass(frozen=True)
class DictState(State):
    """Members plus tombstones.

    A tombstone for x means "x has been deleted"; a later-timestamped
    insert(x) re-adds x (clearing the tombstone), but an insert replayed
    *before* its delete in timestamp order is cancelled by it — the FM
    last-writer semantics fall out of replaying the log in order.
    """

    members: FrozenSet[str] = frozenset()
    tombstones: FrozenSet[str] = frozenset()

    def well_formed(self) -> bool:
        return not (self.members & self.tombstones)

    @property
    def size(self) -> int:
        return len(self.members)

    def __contains__(self, item: str) -> bool:
        return item in self.members


INITIAL_DICT_STATE = DictState()


@dataclass(frozen=True, repr=False)
class InsertUpdate(Update):
    item: str
    name = "insert"

    @property
    def params(self) -> Tuple:
        return (self.item,)

    def apply(self, state: State) -> DictState:
        assert isinstance(state, DictState)
        return DictState(
            state.members | {self.item}, state.tombstones - {self.item}
        )


@dataclass(frozen=True, repr=False)
class DeleteUpdate(Update):
    item: str
    name = "delete"

    @property
    def params(self) -> Tuple:
        return (self.item,)

    def apply(self, state: State) -> DictState:
        assert isinstance(state, DictState)
        return DictState(
            state.members - {self.item}, state.tombstones | {self.item}
        )


class SizeConstraint(IntegrityConstraint):
    """The dictionary should not exceed its capacity."""

    name = CAPACITY_CONSTRAINT

    def __init__(
        self,
        capacity: int = DEFAULT_DICT_CAPACITY,
        unit_cost: float = DEFAULT_OVERSIZE_COST,
    ):
        self.capacity = capacity
        self.unit_cost = unit_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, DictState)
        return self.unit_cost * monus(state.size, self.capacity)


@dataclass(frozen=True, repr=False)
class Insert(Transaction):
    """Insert if the observed dictionary has room (unsafe for the size
    constraint, but preserves its cost)."""

    item: str
    capacity: int = DEFAULT_DICT_CAPACITY
    name = "INSERT"

    @property
    def params(self) -> Tuple:
        return (self.item, self.capacity)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, DictState)
        if state.size < self.capacity:
            return Decision(InsertUpdate(self.item))
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class Delete(Transaction):
    item: str
    name = "DELETE"

    @property
    def params(self) -> Tuple:
        return (self.item,)

    def decide(self, state: State) -> Decision:
        return Decision(DeleteUpdate(self.item))


@dataclass(frozen=True, repr=False)
class Prune(Transaction):
    """Compensator: delete an arbitrary (lexicographically last) member
    when the observed dictionary is over capacity."""

    capacity: int = DEFAULT_DICT_CAPACITY
    name = "PRUNE"

    @property
    def params(self) -> Tuple:
        return (self.capacity,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, DictState)
        if state.size > self.capacity:
            victim = max(state.members)
            return Decision(DeleteUpdate(victim))
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class Query(Transaction):
    """Report the observed membership; identity update.

    The FM availability guarantee, restated: the reported set is the
    membership induced by *some* subsequence of the preceding operations
    (exactly the prefix subsequence condition)."""

    name = "QUERY"

    def decide(self, state: State) -> Decision:
        assert isinstance(state, DictState)
        return Decision(
            IDENTITY,
            (ExternalAction(QUERY_REPORT, None, tuple(sorted(state.members))),),
        )


def make_dictionary_application(
    capacity: int = DEFAULT_DICT_CAPACITY,
    unit_cost: float = DEFAULT_OVERSIZE_COST,
) -> Application:
    return Application(
        name="dictionary",
        initial_state=INITIAL_DICT_STATE,
        constraints=(SizeConstraint(capacity, unit_cost),),
        transaction_families=("INSERT", "DELETE", "PRUNE", "QUERY"),
    )


def oversize_bound(unit_cost: float = DEFAULT_OVERSIZE_COST) -> CostBound:
    """Each missing update hides at most one insert: f(k) = unit * k."""
    return linear_bound(CAPACITY_CONSTRAINT, unit_cost)
