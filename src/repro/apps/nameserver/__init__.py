"""A Grapevine-style replicated name service.

Section 6: "it has been claimed that name servers such as Grapevine [B]
have interesting but nonserializable behavior; it seems likely that they
can be described within our framework."  This package does so.

The database holds registered *individuals* and *groups* (mailing
lists).  The interesting integrity constraint is **referential**: every
group member should be a registered individual.  With stale views, an
ADD_MEMBER decided against a replica that still believes a user exists
can create a *dangling* member — priced per dangling user, with the
usual SHARD structure:

* ``REGISTER(u)`` / ``ADD_MEMBER(g, u)`` / ``REMOVE_MEMBER(g, u)`` /
  ``UNREGISTER(u)`` — UNREGISTER's update purges u's memberships in
  whatever state it is replayed against, so it never creates dangling
  members itself; ADD_MEMBER checks the *observed* registry, making it
  unsafe-but-cost-preserving (the MOVE_UP of this application);
* ``SCRUB`` — the compensating transaction: purge one observed dangling
  user's memberships;
* ``LOOKUP(g)`` — a pure query reporting the observed membership (the
  Grapevine behavior: answers may be stale but are some subsequence's
  truth).
"""

from .nameserver import (
    AddMember,
    AddMemberUpdate,
    DANGLING,
    DanglingConstraint,
    INITIAL_NS_STATE,
    LOOKUP_REPORT,
    Lookup,
    NameServerState,
    PurgeUpdate,
    Register,
    RegisterUpdate,
    RemoveMember,
    RemoveMemberUpdate,
    Scrub,
    Unregister,
    UnregisterUpdate,
    dangling_bound,
    make_nameserver_application,
)

__all__ = [
    "AddMember",
    "AddMemberUpdate",
    "DANGLING",
    "DanglingConstraint",
    "INITIAL_NS_STATE",
    "LOOKUP_REPORT",
    "Lookup",
    "NameServerState",
    "PurgeUpdate",
    "Register",
    "RegisterUpdate",
    "RemoveMember",
    "RemoveMemberUpdate",
    "Scrub",
    "Unregister",
    "UnregisterUpdate",
    "dangling_bound",
    "make_nameserver_application",
]
