"""Implementation of the name service (see package docstring)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ...core.application import Application
from ...core.constraint import IntegrityConstraint
from ...core.relations import CostBound, linear_bound
from ...core.state import State
from ...core.transaction import Decision, ExternalAction, Transaction
from ...core.update import IDENTITY, Update

DANGLING = "dangling"
LOOKUP_REPORT = "lookup_report"

#: default penalty per dangling user (a misrouted mailing-list entry).
DEFAULT_DANGLING_COST = 25.0

Groups = Tuple[Tuple[str, FrozenSet[str]], ...]


@dataclass(frozen=True)
class NameServerState(State):
    """Registered individuals plus group membership sets.

    Groups are stored sorted by name with no empty groups, so structurally
    equal registries compare equal.
    """

    individuals: FrozenSet[str] = frozenset()
    groups: Groups = ()

    def well_formed(self) -> bool:
        names = [g for g, _ in self.groups]
        return (
            names == sorted(names)
            and len(set(names)) == len(names)
            and all(members for _, members in self.groups)
        )

    def members(self, group: str) -> FrozenSet[str]:
        for name, members in self.groups:
            if name == group:
                return members
        return frozenset()

    def is_registered(self, user: str) -> bool:
        return user in self.individuals

    def with_group(self, group: str, members: FrozenSet[str]) -> "NameServerState":
        remaining = tuple(
            (g, m) for g, m in self.groups if g != group
        )
        if members:
            remaining = tuple(sorted(remaining + ((group, members),)))
        return NameServerState(self.individuals, remaining)

    def dangling_users(self) -> FrozenSet[str]:
        """Users appearing in some group without being registered."""
        mentioned = frozenset(
            user for _, members in self.groups for user in members
        )
        return mentioned - self.individuals

    @property
    def dangling_count(self) -> int:
        return len(self.dangling_users())


INITIAL_NS_STATE = NameServerState()


# -- updates -------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class RegisterUpdate(Update):
    user: str
    name = "register"

    @property
    def params(self) -> Tuple:
        return (self.user,)

    def apply(self, state: State) -> NameServerState:
        assert isinstance(state, NameServerState)
        return NameServerState(
            state.individuals | {self.user}, state.groups
        )


@dataclass(frozen=True, repr=False)
class UnregisterUpdate(Update):
    """Remove the individual *and purge their memberships in the applied
    state* — so an unregistration never strands a member it can see."""

    user: str
    name = "unregister"

    @property
    def params(self) -> Tuple:
        return (self.user,)

    def apply(self, state: State) -> NameServerState:
        assert isinstance(state, NameServerState)
        result = NameServerState(
            state.individuals - {self.user}, state.groups
        )
        for group, members in state.groups:
            if self.user in members:
                result = result.with_group(group, members - {self.user})
        return result


@dataclass(frozen=True, repr=False)
class AddMemberUpdate(Update):
    group: str
    user: str
    name = "add_member"

    @property
    def params(self) -> Tuple:
        return (self.group, self.user)

    def apply(self, state: State) -> NameServerState:
        assert isinstance(state, NameServerState)
        return state.with_group(
            self.group, state.members(self.group) | {self.user}
        )


@dataclass(frozen=True, repr=False)
class RemoveMemberUpdate(Update):
    group: str
    user: str
    name = "remove_member"

    @property
    def params(self) -> Tuple:
        return (self.group, self.user)

    def apply(self, state: State) -> NameServerState:
        assert isinstance(state, NameServerState)
        members = state.members(self.group)
        if self.user not in members:
            return state
        return state.with_group(self.group, members - {self.user})


@dataclass(frozen=True, repr=False)
class PurgeUpdate(Update):
    """Remove a user from every group (membership scrub; registration
    untouched)."""

    user: str
    name = "purge"

    @property
    def params(self) -> Tuple:
        return (self.user,)

    def apply(self, state: State) -> NameServerState:
        assert isinstance(state, NameServerState)
        result = state
        for group, members in state.groups:
            if self.user in members:
                result = result.with_group(group, members - {self.user})
        return result


# -- constraint -------------------------------------------------------------


class DanglingConstraint(IntegrityConstraint):
    """Every group member should be a registered individual; cost per
    dangling *user* (each update family changes the count by at most one,
    which is what keeps the bound linear)."""

    name = DANGLING

    def __init__(self, unit_cost: float = DEFAULT_DANGLING_COST):
        self.unit_cost = unit_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, NameServerState)
        return self.unit_cost * state.dangling_count


def dangling_bound(unit_cost: float = DEFAULT_DANGLING_COST) -> CostBound:
    """Only ``add_member`` can introduce a dangling user, one at a time:
    f(k) = unit_cost * k."""
    return linear_bound(DANGLING, unit_cost)


# -- transactions ---------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Register(Transaction):
    user: str
    name = "REGISTER"

    @property
    def params(self) -> Tuple:
        return (self.user,)

    def decide(self, state: State) -> Decision:
        return Decision(RegisterUpdate(self.user))


@dataclass(frozen=True, repr=False)
class Unregister(Transaction):
    user: str
    name = "UNREGISTER"

    @property
    def params(self) -> Tuple:
        return (self.user,)

    def decide(self, state: State) -> Decision:
        return Decision(UnregisterUpdate(self.user))


@dataclass(frozen=True, repr=False)
class AddMember(Transaction):
    """Add u to g only if u is registered in the *observed* registry —
    the unsafe-but-cost-preserving allocator of this application."""

    group: str
    user: str
    name = "ADD_MEMBER"

    @property
    def params(self) -> Tuple:
        return (self.group, self.user)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, NameServerState)
        if state.is_registered(self.user):
            return Decision(AddMemberUpdate(self.group, self.user))
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class RemoveMember(Transaction):
    group: str
    user: str
    name = "REMOVE_MEMBER"

    @property
    def params(self) -> Tuple:
        return (self.group, self.user)

    def decide(self, state: State) -> Decision:
        return Decision(RemoveMemberUpdate(self.group, self.user))


@dataclass(frozen=True, repr=False)
class Scrub(Transaction):
    """Compensator: purge the lexicographically first observed dangling
    user's memberships."""

    name = "SCRUB"

    def decide(self, state: State) -> Decision:
        assert isinstance(state, NameServerState)
        dangling = state.dangling_users()
        if dangling:
            return Decision(PurgeUpdate(min(dangling)))
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class Lookup(Transaction):
    """Report the observed membership of a group (Grapevine's staleness:
    the answer is some subsequence's truth)."""

    group: str
    name = "LOOKUP"

    @property
    def params(self) -> Tuple:
        return (self.group,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, NameServerState)
        return Decision(
            IDENTITY,
            (
                ExternalAction(
                    LOOKUP_REPORT,
                    self.group,
                    tuple(sorted(state.members(self.group))),
                ),
            ),
        )


def make_nameserver_application(
    unit_cost: float = DEFAULT_DANGLING_COST,
) -> Application:
    return Application(
        name="nameserver",
        initial_state=INITIAL_NS_STATE,
        constraints=(DanglingConstraint(unit_cost),),
        transaction_families=(
            "REGISTER", "UNREGISTER", "ADD_MEMBER", "REMOVE_MEMBER",
            "SCRUB", "LOOKUP",
        ),
    )
