"""Applications built on the formal model: the paper's airline example
and the other resource-allocation domains it claims generality over."""
