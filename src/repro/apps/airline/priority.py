"""Passenger priority (Sections 4.2 and 5.5).

The competing entities are the people; in any state the *known* people are
those on either list.  For known P and Q, ``P < Q`` ("P has priority over
Q") means: P precedes Q on the WAIT-LIST, or P precedes Q on the
ASSIGNED-LIST, or P is assigned while Q is waiting.
"""

from __future__ import annotations

from typing import Tuple

from ...core.state import State
from .state import AirlineState, Person


def known(state: State) -> Tuple[Person, ...]:
    """All known (competing) people; assigned first, then waiting —
    which happens to enumerate them in priority order."""
    assert isinstance(state, AirlineState)
    return state.known()


def precedes(state: State, p: Person, q: Person) -> bool:
    """``P < Q`` per the Section 4.2 definition.  Both must be known."""
    assert isinstance(state, AirlineState)
    if p in state.assigned:
        if q in state.waiting:
            return True
        if q in state.assigned:
            return state.assigned.index(p) < state.assigned.index(q)
        return False
    if p in state.waiting and q in state.waiting:
        return state.waiting.index(p) < state.waiting.index(q)
    return False


def priority_rank(state: AirlineState, person: Person) -> int:
    """Position of ``person`` in the total priority order (0 = best).

    The Section 4.2 order is total on known people: assigned people (in
    list order) outrank waiting people (in list order)."""
    if person in state.assigned:
        return state.assigned.index(person)
    if person in state.waiting:
        return state.al + state.waiting.index(person)
    raise KeyError(f"{person!r} is not known in {state!r}")
