"""Executable forms of the paper's airline-specific results (Section 5).

Each function evaluates one numbered result against a concrete execution:
it checks the hypotheses, checks the conclusion, and returns a
:class:`~repro.core.theorems.TheoremReport` whose ``holds`` property is
the implication.  The benchmark harness sweeps workloads and parameters
through these; the test suite checks them on targeted executions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ...core.conditions import (
    group_by_family,
    group_by_update_param,
    is_centralized,
    is_transitive,
)
from ...core.execution import Execution, TimedExecution
from ...core.grouping import Grouping
from ...core.theorems import TheoremReport, lemma12, preserves_by_family
from .constraints import (
    DEFAULT_OVER_COST,
    DEFAULT_UNDER_COST,
    OverbookingConstraint,
    UnderbookingConstraint,
    overbooking_bound,
    underbooking_bound,
)
from .priority import precedes
from .state import AirlineState, Person
from .transactions import MoveDown, MoveUp
from .witnesses import (
    persons_mentioned,
    refined_overbooking_deficit,
    refined_underbooking_deficit,
)

_EPS = 1e-9

#: which families preserve each constraint's cost (Section 4.1).
OVERBOOKING_PRESERVERS = ("REQUEST", "CANCEL", "MOVE_UP", "MOVE_DOWN")
UNDERBOOKING_PRESERVERS = ("MOVE_UP", "MOVE_DOWN")
OVERBOOKING_UNSAFE = ("MOVE_UP",)
UNDERBOOKING_UNSAFE = ("REQUEST", "CANCEL", "MOVE_DOWN")


def _over(capacity: int, over_cost: float) -> OverbookingConstraint:
    return OverbookingConstraint(capacity, over_cost)


def _under(capacity: int, under_cost: float) -> UnderbookingConstraint:
    return UnderbookingConstraint(capacity, under_cost)


# -- Corollary 6: per-step bounds ----------------------------------------------


def corollary6_overbooking(
    execution: Execution,
    index: int,
    k: int,
    capacity: int,
    over_cost: float = DEFAULT_OVER_COST,
) -> TheoremReport:
    """Corollary 6(1): for any k-complete transaction, the overbooking
    cost after it is at most its value before, or at most 900k."""
    constraint = _over(capacity, over_cost)
    hypothesis = execution.deficit(index) <= k
    before = constraint.cost(execution.actual_before(index))
    after = constraint.cost(execution.actual_after(index))
    limit = overbooking_bound(over_cost)(k)
    conclusion = after <= before + _EPS or after <= limit + _EPS
    return TheoremReport(
        "corollary6.1", hypothesis, conclusion,
        details={"index": index, "before": before, "after": after, "f(k)": limit},
    )


def corollary6_underbooking(
    execution: Execution,
    index: int,
    k: int,
    capacity: int,
    under_cost: float = DEFAULT_UNDER_COST,
) -> TheoremReport:
    """Corollary 6(2): for a k-complete MOVE_UP or MOVE_DOWN, the
    underbooking cost after it is at most its value before, or 300k."""
    constraint = _under(capacity, under_cost)
    is_mover = execution.transactions[index].name in ("MOVE_UP", "MOVE_DOWN")
    hypothesis = is_mover and execution.deficit(index) <= k
    before = constraint.cost(execution.actual_before(index))
    after = constraint.cost(execution.actual_after(index))
    limit = underbooking_bound(under_cost)(k)
    conclusion = after <= before + _EPS or after <= limit + _EPS
    return TheoremReport(
        "corollary6.2", hypothesis, conclusion,
        details={"index": index, "before": before, "after": after, "f(k)": limit},
    )


# -- Corollary 8: invariant overbooking bound ----------------------------------


def corollary8(
    execution: Execution,
    k: int,
    capacity: int,
    over_cost: float = DEFAULT_OVER_COST,
) -> TheoremReport:
    """Corollary 8: if all MOVE_UPs are k-complete, every reachable state
    has overbooking cost at most 900k."""
    constraint = _over(capacity, over_cost)
    hypothesis = all(
        execution.deficit(i) <= k
        for i in execution.indices
        if execution.transactions[i].name == "MOVE_UP"
    )
    limit = overbooking_bound(over_cost)(k)
    worst = max(
        (constraint.cost(s) for s in execution.actual_states), default=0.0
    )
    return TheoremReport(
        "corollary8", hypothesis, worst <= limit + _EPS,
        details={"k": k, "f(k)": limit, "max_overbooking_cost": worst},
    )


# -- Corollaries 10 and 11: grouped underbooking / total bounds -----------------


def _grouping_hypothesis(
    execution: Execution, grouping: Grouping, k: int
) -> bool:
    """All movers and all end-of-group transactions are k-complete."""
    ends = set(grouping.group_ends())
    preserving = preserves_by_family(UNDERBOOKING_PRESERVERS)
    return all(
        execution.deficit(i) <= k
        for i in execution.indices
        if preserving(execution, i) or i in ends
    )


def corollary10(
    execution: Execution,
    grouping: Grouping,
    k: int,
    capacity: int,
    under_cost: float = DEFAULT_UNDER_COST,
) -> TheoremReport:
    """Corollary 10: for a grouping for the underbooking constraint with
    the movers and group-end transactions k-complete, every normal state
    has underbooking cost at most 300k."""
    constraint = _under(capacity, under_cost)
    preserving = preserves_by_family(UNDERBOOKING_PRESERVERS)
    valid = grouping.is_valid_for(
        execution, constraint.name, constraint.cost, preserving
    )
    hypothesis = valid and _grouping_hypothesis(execution, grouping, k)
    limit = underbooking_bound(under_cost)(k)
    worst = max(
        (constraint.cost(s) for s in grouping.normal_states(execution)),
        default=0.0,
    )
    return TheoremReport(
        "corollary10", hypothesis, worst <= limit + _EPS,
        details={"k": k, "f(k)": limit, "max_normal_underbooking": worst,
                 "grouping_valid": valid},
    )


def corollary11(
    execution: Execution,
    grouping: Grouping,
    k: int,
    capacity: int,
    over_cost: float = DEFAULT_OVER_COST,
    under_cost: float = DEFAULT_UNDER_COST,
) -> TheoremReport:
    """Corollary 11: under the Corollary 10 hypotheses *plus* all MOVE_UPs
    k-complete (Corollary 8), every normal state has total cost at most
    900k — using the fact that each well-formed state violates at most one
    of the two constraints."""
    over = _over(capacity, over_cost)
    under = _under(capacity, under_cost)
    preserving = preserves_by_family(UNDERBOOKING_PRESERVERS)
    valid = grouping.is_valid_for(
        execution, under.name, under.cost, preserving
    )
    move_ups_ok = all(
        execution.deficit(i) <= k
        for i in execution.indices
        if execution.transactions[i].name == "MOVE_UP"
    )
    hypothesis = (
        valid and move_ups_ok and _grouping_hypothesis(execution, grouping, k)
    )
    limit = max(overbooking_bound(over_cost)(k), underbooking_bound(under_cost)(k))
    worst = max(
        (over.cost(s) + under.cost(s) for s in grouping.normal_states(execution)),
        default=0.0,
    )
    return TheoremReport(
        "corollary11", hypothesis, worst <= limit + _EPS,
        details={"k": k, "limit": limit, "max_normal_total": worst},
    )


# -- Corollary 13: compensation repairs -----------------------------------------


def corollary13_overbooking(
    execution: Execution,
    kept: Sequence[int],
    capacity: int,
    over_cost: float = DEFAULT_OVER_COST,
) -> TheoremReport:
    """Corollary 13(1): either the overbooking cost is already <= 900k, or
    an atomic suffix of MOVE_DOWNs (first seeing exactly ``kept``) repairs
    it to <= 900k, where k is the number of indices missing from ``kept``."""
    constraint = _over(capacity, over_cost)
    report = lemma12(
        execution, kept, MoveDown(capacity), constraint.cost,
        overbooking_bound(over_cost),
    )
    report.name = "corollary13.1"
    return report


def corollary13_underbooking(
    execution: Execution,
    kept: Sequence[int],
    capacity: int,
    under_cost: float = DEFAULT_UNDER_COST,
) -> TheoremReport:
    """Corollary 13(2): the MOVE_UP analogue for the underbooking cost."""
    constraint = _under(capacity, under_cost)
    report = lemma12(
        execution, kept, MoveUp(capacity), constraint.cost,
        underbooking_bound(under_cost),
    )
    report.name = "corollary13.2"
    return report


# -- Theorem 20: refined per-step bounds ----------------------------------------


def theorem20_overbooking(
    execution: Execution,
    index: int,
    capacity: int,
    over_cost: float = DEFAULT_OVER_COST,
) -> TheoremReport:
    """Theorem 20(1): with k = the number of *assigned* persons whose
    assignment witness the transaction's prefix fails to retain, the
    overbooking cost after it is <= its value before, or <= 900k.

    Unlike Corollary 6, k here counts only critical missing information;
    the report's details expose both deficits for comparison.
    """
    constraint = _over(capacity, over_cost)
    seq = execution.updates[:index]
    state = execution.actual_before(index)
    assert isinstance(state, AirlineState)
    k = refined_overbooking_deficit(seq, execution.prefixes[index], state.assigned)
    before = constraint.cost(state)
    after = constraint.cost(execution.actual_after(index))
    limit = overbooking_bound(over_cost)(k)
    conclusion = after <= before + _EPS or after <= limit + _EPS
    return TheoremReport(
        "theorem20.1", True, conclusion,
        details={"index": index, "refined_k": k,
                 "plain_k": execution.deficit(index),
                 "before": before, "after": after, "f(k)": limit},
    )


def theorem20_underbooking(
    execution: Execution,
    index: int,
    capacity: int,
    under_cost: float = DEFAULT_UNDER_COST,
) -> TheoremReport:
    """Theorem 20(2): the mover analogue with k = the number of
    *unassigned* persons for whom the prefix misses the last cancel or
    last move_down."""
    constraint = _under(capacity, under_cost)
    is_mover = execution.transactions[index].name in ("MOVE_UP", "MOVE_DOWN")
    seq = execution.updates[:index]
    state = execution.actual_before(index)
    assert isinstance(state, AirlineState)
    k = refined_underbooking_deficit(
        seq, execution.prefixes[index], state.assigned
    )
    before = constraint.cost(state)
    after = constraint.cost(execution.actual_after(index))
    limit = underbooking_bound(under_cost)(k)
    conclusion = after <= before + _EPS or after <= limit + _EPS
    return TheoremReport(
        "theorem20.2", is_mover, conclusion,
        details={"index": index, "refined_k": k,
                 "plain_k": execution.deficit(index),
                 "before": before, "after": after, "f(k)": limit},
    )


# -- Theorems 22 and 23: centralization prevents overbooking ---------------------


def theorem22(
    execution: Execution,
    capacity: int,
    over_cost: float = DEFAULT_OVER_COST,
) -> TheoremReport:
    """Theorem 22: in a transitive execution with the MOVE_UPs centralized
    and, for each person P, the transactions generating updates involving
    P centralized, every reachable state has overbooking cost zero."""
    constraint = _over(capacity, over_cost)
    transitive = is_transitive(execution)
    movers_central = is_centralized(
        execution, group_by_family(execution, "MOVE_UP")
    )
    per_person = all(
        is_centralized(execution, group_by_update_param(execution, p))
        for p in persons_mentioned(execution.updates)
    )
    hypothesis = transitive and movers_central and per_person
    worst = max(
        (constraint.cost(s) for s in execution.actual_states), default=0.0
    )
    return TheoremReport(
        "theorem22", hypothesis, worst <= _EPS,
        details={"transitive": transitive, "movers_centralized": movers_central,
                 "per_person_centralized": per_person,
                 "max_overbooking_cost": worst},
    )


def theorem23(
    execution: Execution,
    capacity: int,
    over_cost: float = DEFAULT_OVER_COST,
) -> TheoremReport:
    """Theorem 23: the Theorem 22 variant replacing the per-person
    hypothesis with "at most one REQUEST(P) per person"."""
    constraint = _over(capacity, over_cost)
    transitive = is_transitive(execution)
    movers_central = is_centralized(
        execution, group_by_family(execution, "MOVE_UP")
    )
    request_counts: dict = {}
    for txn in execution.transactions:
        if txn.name == "REQUEST":
            person = txn.params[0]
            request_counts[person] = request_counts.get(person, 0) + 1
    single_requests = all(c <= 1 for c in request_counts.values())
    hypothesis = transitive and movers_central and single_requests
    worst = max(
        (constraint.cost(s) for s in execution.actual_states), default=0.0
    )
    return TheoremReport(
        "theorem23", hypothesis, worst <= _EPS,
        details={"transitive": transitive, "movers_centralized": movers_central,
                 "single_requests": single_requests,
                 "max_overbooking_cost": worst},
    )


# -- Theorems 25 and 27: fairness ------------------------------------------------


def _fairness_preconditions(
    execution: Execution, p: Person, q: Person
) -> Tuple[bool, bool, bool]:
    transitive = is_transitive(execution)
    movers = group_by_family(execution, "MOVE_UP", "MOVE_DOWN")
    movers_central = is_centralized(execution, movers)
    single = True
    for person in (p, q):
        requests = sum(
            1 for t in execution.transactions
            if t.name == "REQUEST" and t.params[0] == person
        )
        cancels = sum(
            1 for t in execution.transactions
            if t.name == "CANCEL" and t.params[0] == person
        )
        if requests != 1 or cancels != 0:
            single = False
    return transitive, movers_central, single


def _first_mover_seeing_both(
    execution: Execution, p: Person, q: Person
) -> Optional[int]:
    """The first MOVE_UP/MOVE_DOWN whose prefix includes both REQUESTs."""
    req_index = {}
    for i, txn in enumerate(execution.transactions):
        if txn.name == "REQUEST" and txn.params[0] in (p, q):
            req_index.setdefault(txn.params[0], i)
    if p not in req_index or q not in req_index:
        return None
    for i in execution.indices:
        if execution.transactions[i].name not in ("MOVE_UP", "MOVE_DOWN"):
            continue
        seen = set(execution.prefixes[i])
        if req_index[p] in seen and req_index[q] in seen:
            return i
    return None


def theorem25(
    execution: Execution, p: Person, q: Person
) -> TheoremReport:
    """Theorem 25: transitive execution, centralized movers, P and Q each
    with exactly one REQUEST and no CANCEL.  For any mover T seeing both
    requests: if P < Q in T's apparent state, then P < Q in the actual
    state before T and in all later actual states."""
    transitive, movers_central, single = _fairness_preconditions(execution, p, q)
    mover = _first_mover_seeing_both(execution, p, q)
    hypothesis = transitive and movers_central and single and mover is not None
    conclusion = True
    details = {
        "transitive": transitive,
        "movers_centralized": movers_central,
        "single_requests": single,
        "first_informed_mover": mover,
    }
    if mover is not None:
        apparent = execution.apparent_before[mover]
        p_first = precedes(apparent, p, q)
        q_first = precedes(apparent, q, p)
        details["apparent_order"] = (
            f"{p}<{q}" if p_first else (f"{q}<{p}" if q_first else "unknown")
        )
        if p_first or q_first:
            winner, loser = (p, q) if p_first else (q, p)
            for i in range(mover, len(execution) + 1):
                state = execution.actual_states[i]
                assert isinstance(state, AirlineState)
                if state.is_known(winner) and state.is_known(loser):
                    if precedes(state, loser, winner):
                        conclusion = False
                        details["violated_at_state"] = i
                        break
    return TheoremReport("theorem25", hypothesis, conclusion, details=details)


def lemma26(
    execution: Execution, p: Person, q: Person
) -> TheoremReport:
    """Lemma 26: transitive execution, centralized movers, P and Q each
    with exactly one REQUEST and no CANCEL, REQUEST(P) preceding
    REQUEST(Q) in the serial order, and every mover with REQUEST(Q) in
    its prefix also having REQUEST(P).  Then P < Q in every actual state
    where both are known."""
    transitive, movers_central, single = _fairness_preconditions(execution, p, q)
    req_index = {}
    for i, txn in enumerate(execution.transactions):
        if txn.name == "REQUEST" and txn.params[0] in (p, q):
            req_index.setdefault(txn.params[0], i)
    ordered = (
        p in req_index and q in req_index and req_index[p] < req_index[q]
    )
    informed_together = True
    if ordered:
        for i in execution.indices:
            if execution.transactions[i].name not in ("MOVE_UP", "MOVE_DOWN"):
                continue
            seen = set(execution.prefixes[i])
            if req_index[q] in seen and req_index[p] not in seen:
                informed_together = False
                break
    hypothesis = (
        transitive and movers_central and single and ordered
        and informed_together
    )
    conclusion = True
    violated_at = None
    for i, state in enumerate(execution.actual_states):
        assert isinstance(state, AirlineState)
        if state.is_known(p) and state.is_known(q):
            if not precedes(state, p, q):
                conclusion = False
                violated_at = i
                break
    return TheoremReport(
        "lemma26", hypothesis, conclusion,
        details={
            "transitive": transitive, "movers_centralized": movers_central,
            "single_requests": single, "request_order_ok": ordered,
            "movers_informed_together": informed_together,
            "violated_at_state": violated_at,
        },
    )


def theorem27(
    execution: TimedExecution,
    t: float,
    p: Person,
    q: Person,
) -> TheoremReport:
    """Theorem 27: transitive, orderly, t-bounded-delay timed execution
    with centralized movers; P and Q each request exactly once with no
    cancels; REQUEST(P) precedes REQUEST(Q) by at least time t.  Then
    P < Q in every actual state where both are known."""
    transitive, movers_central, single = _fairness_preconditions(execution, p, q)
    orderly = execution.is_orderly()
    delay_ok = execution.has_bounded_delay(t)
    req_time = {}
    for i, txn in enumerate(execution.transactions):
        if txn.name == "REQUEST" and txn.params[0] in (p, q):
            req_time.setdefault(txn.params[0], execution.times[i])
    gap_ok = (
        p in req_time
        and q in req_time
        and req_time[q] - req_time[p] >= t
    )
    hypothesis = (
        transitive and movers_central and single and orderly and delay_ok
        and gap_ok
    )
    conclusion = True
    violated_at = None
    for i, state in enumerate(execution.actual_states):
        assert isinstance(state, AirlineState)
        if state.is_known(p) and state.is_known(q):
            if not precedes(state, p, q):
                conclusion = False
                violated_at = i
                break
    return TheoremReport(
        "theorem27", hypothesis, conclusion,
        details={
            "transitive": transitive, "movers_centralized": movers_central,
            "single_requests": single, "orderly": orderly,
            "t_bounded_delay": delay_ok, "gap_ok": gap_ok,
            "violated_at_state": violated_at,
        },
    )
