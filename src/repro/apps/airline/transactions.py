"""The four airline transactions (Section 2.3).

* ``REQUEST(P)`` — trivial decision: always invokes ``request(P)``, no
  external actions;
* ``CANCEL(P)`` — trivial decision: always invokes ``cancel(P)``;
* ``MOVE_UP`` — if the observed state has a free seat (AL < capacity) and
  someone waiting, selects the *first* waiting person P, informs P that a
  seat is granted (external action) and invokes ``move_up(P)``;
* ``MOVE_DOWN`` — if the observed state is overbooked (AL > capacity),
  selects the *last* assigned person P, informs P of the demotion and
  invokes ``move_down(P)``.

The movers' decisions depend on the (possibly stale) observed state; the
updates they emit re-check membership when replayed, which is what makes
them idempotent and safe to undo/redo (Sections 1.2, 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.state import State
from ...core.transaction import Decision, ExternalAction, Transaction
from ...core.update import IDENTITY
from .state import AirlineState, Person
from .updates import CancelUpdate, MoveDownUpdate, MoveUpUpdate, RequestUpdate

#: capacity of Flight 1 in the paper's example.
DEFAULT_CAPACITY = 100

#: external action kinds emitted by the movers.
INFORM_ASSIGNED = "inform_assigned"
INFORM_WAITLISTED = "inform_waitlisted"


@dataclass(frozen=True, repr=False)
class Request(Transaction):
    """``REQUEST(P)``: put P on the wait list."""

    person: Person
    name = "REQUEST"

    @property
    def params(self) -> Tuple:
        return (self.person,)

    def decide(self, state: State) -> Decision:
        return Decision(RequestUpdate(self.person))


@dataclass(frozen=True, repr=False)
class Cancel(Transaction):
    """``CANCEL(P)``: remove P from whichever list holds it."""

    person: Person
    name = "CANCEL"

    @property
    def params(self) -> Tuple:
        return (self.person,)

    def decide(self, state: State) -> Decision:
        return Decision(CancelUpdate(self.person))


@dataclass(frozen=True, repr=False)
class MoveUp(Transaction):
    """``MOVE_UP``: grant the first waiting person a seat, if one appears
    free in the observed state."""

    capacity: int = DEFAULT_CAPACITY
    name = "MOVE_UP"

    @property
    def params(self) -> Tuple:
        return (self.capacity,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, AirlineState)
        if state.al < self.capacity and state.wl > 0:
            person = state.waiting[0]
            return Decision(
                MoveUpUpdate(person),
                (ExternalAction(INFORM_ASSIGNED, person),),
            )
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class MoveDown(Transaction):
    """``MOVE_DOWN``: demote the last assigned person, if the observed
    state is overbooked."""

    capacity: int = DEFAULT_CAPACITY
    name = "MOVE_DOWN"

    @property
    def params(self) -> Tuple:
        return (self.capacity,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, AirlineState)
        if state.al > self.capacity:
            person = state.assigned[-1]
            return Decision(
                MoveDownUpdate(person),
                (ExternalAction(INFORM_WAITLISTED, person),),
            )
        return Decision(IDENTITY)
