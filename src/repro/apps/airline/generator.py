"""Random airline workload generation under controlled information regimes.

The generator drives an :class:`~repro.core.builder.ExecutionBuilder` with
a transaction mix (requests, cancels, movers) and a *drop regime* that
controls how much of the prefix each transaction misses — the k of the
paper's k-completeness hypotheses.  Regimes:

* ``"none"``     — complete prefixes (the serializable baseline);
* ``"random"``   — up to k uniformly chosen predecessors dropped;
* ``"recent"``   — exactly the most recent k predecessors dropped
                   (replication lag; adversarial for the cost bounds);
* ``"movers_only"`` — only MOVE_UP/MOVE_DOWN suffer drops, requests and
                   cancels see complete prefixes.

``protect_movers`` keeps all mover indices visible to movers regardless
of drops (the centralized-agent policy of Section 3.2), and
``grouped=True`` inserts a burst of MOVE_UPs after every REQUEST/CANCEL
until the apparent underbooking cost returns to zero, yielding a valid
grouping for Corollary 10/11 alongside the execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...core.builder import ExecutionBuilder
from ...core.execution import Execution
from ...core.grouping import Grouping
from .constraints import UnderbookingConstraint
from .state import AirlineState
from .transactions import Cancel, MoveDown, MoveUp, Request


@dataclass
class GeneratorConfig:
    """Parameters for :func:`generate`."""

    capacity: int = 10
    n_transactions: int = 200
    k: int = 0
    drop: str = "random"  # none | random | recent | movers_only
    protect_movers: bool = False
    request_weight: float = 4.0
    cancel_weight: float = 1.0
    move_up_weight: float = 3.0
    move_down_weight: float = 1.0
    grouped: bool = False
    max_group_movers: int = 400


@dataclass
class GeneratedRun:
    execution: Execution
    grouping: Optional[Grouping] = None


class _AirlineGenerator:
    def __init__(self, config: GeneratorConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self.builder = ExecutionBuilder(AirlineState())
        self.next_person = 1
        self.requested: List[str] = []
        self.mover_indices: List[int] = []
        self.boundaries: List[int] = []
        self._under = UnderbookingConstraint(config.capacity)

    # -- prefix selection --------------------------------------------------

    def _prefix(self, is_mover: bool) -> Tuple[int, ...]:
        cfg = self.config
        n = len(self.builder)
        full = list(range(n))
        if cfg.drop == "none" or cfg.k == 0:
            return tuple(full)
        if cfg.drop == "movers_only" and not is_mover:
            return tuple(full)
        protected = set(self.mover_indices) if (
            cfg.protect_movers and is_mover
        ) else set()
        droppable = [j for j in full if j not in protected]
        if not droppable:
            return tuple(full)
        if cfg.drop == "recent":
            dropped = set(droppable[-cfg.k:])
        else:
            count = self.rng.randint(0, min(cfg.k, len(droppable)))
            dropped = set(self.rng.sample(droppable, count))
        return tuple(j for j in full if j not in dropped)

    # -- transaction selection ----------------------------------------------

    def _next_transaction(self):
        cfg = self.config
        weights = [
            ("request", cfg.request_weight),
            ("cancel", cfg.cancel_weight if self.requested else 0.0),
            ("move_up", cfg.move_up_weight),
            ("move_down", cfg.move_down_weight),
        ]
        total = sum(w for _, w in weights)
        roll = self.rng.random() * total
        acc = 0.0
        for kind, w in weights:
            acc += w
            if roll <= acc:
                break
        if kind == "request":
            person = f"P{self.next_person}"
            self.next_person += 1
            self.requested.append(person)
            return Request(person), False
        if kind == "cancel":
            person = self.rng.choice(self.requested)
            return Cancel(person), False
        if kind == "move_up":
            return MoveUp(cfg.capacity), True
        return MoveDown(cfg.capacity), True

    # -- grouped mode --------------------------------------------------------

    def _close_group_with_move_ups(self) -> None:
        """Append MOVE_UPs (same drop regime) until the apparent state
        after one of them has underbooking cost zero, closing the group."""
        cfg = self.config
        for _ in range(cfg.max_group_movers):
            prefix = self._prefix(is_mover=True)
            index = self.builder.add(MoveUp(cfg.capacity), prefix=prefix)
            self.mover_indices.append(index)
            apparent_after = self.builder.apparent_after(index)
            if self._under.cost(apparent_after) == 0:
                self.boundaries.append(index + 1)
                return
        raise RuntimeError("group failed to close; k too large for capacity?")

    # -- main loop ------------------------------------------------------------

    def run(self) -> GeneratedRun:
        cfg = self.config
        while len(self.builder) < cfg.n_transactions:
            txn, is_mover = self._next_transaction()
            prefix = self._prefix(is_mover)
            index = self.builder.add(txn, prefix=prefix)
            if is_mover:
                self.mover_indices.append(index)
            if not cfg.grouped:
                continue
            if is_mover:
                # movers preserve the underbooking cost: singleton groups.
                self.boundaries.append(index + 1)
            else:
                self._close_group_with_move_ups()
        execution = self.builder.build()
        grouping = (
            Grouping(len(execution), tuple(self.boundaries))
            if cfg.grouped
            else None
        )
        return GeneratedRun(execution, grouping)


def generate(
    config: GeneratorConfig, rng: Optional[random.Random] = None
) -> GeneratedRun:
    """Generate a random airline execution (and grouping, if requested)."""
    return _AirlineGenerator(config, rng or random.Random(0)).run()


def random_airline_execution(
    seed: int = 0,
    capacity: int = 10,
    n_transactions: int = 200,
    k: int = 0,
    drop: str = "random",
    **kwargs,
) -> Execution:
    """Convenience wrapper returning just the execution."""
    config = GeneratorConfig(
        capacity=capacity,
        n_transactions=n_transactions,
        k=k,
        drop=drop,
        **kwargs,
    )
    return generate(config, random.Random(seed)).execution
