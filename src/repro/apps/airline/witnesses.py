"""Witness machinery for refined cost bounds (Section 5.3).

Section 5.3 analyzes update *sequences* symbolically.  For a sequence of
airline updates and a person P:

* an **assignment witness** for P is a pair (A, B) with A = request(P),
  B = move_up(P), A before B, no cancel(P) after A, and no move_down(P)
  after B;
* a **waiting witness** for P is either a single A = request(P) with no
  cancel(P) or move_up(P) after it, or a pair (A, B) with A = request(P),
  B = move_down(P), A before B, no cancel(P) after A and no move_up(P)
  after B.

Lemma 14 says these witnesses exactly characterize membership of P in the
ASSIGNED-LIST / WAIT-LIST of the resulting state; Lemmas 15-19 transfer
membership between a full sequence and a subsequence when the subsequence
retains the right critical updates.  This module implements the witnesses
and the lemmas' hypotheses as executable functions; they drive the refined
bounds of Theorems 20-21.

Positions are 0-based indices into the update sequence.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from ...core.update import Update
from .state import Person

AssignmentWitness = Tuple[int, int]
WaitingWitness = Union[int, Tuple[int, int]]


def _positions(seq: Sequence[Update], name: str, person: Person) -> List[int]:
    return [
        i for i, u in enumerate(seq)
        if u.name == name and u.params == (person,)
    ]


def _last_position(seq: Sequence[Update], name: str, person: Person) -> Optional[int]:
    positions = _positions(seq, name, person)
    return positions[-1] if positions else None


def persons_mentioned(seq: Sequence[Update]) -> Tuple[Person, ...]:
    """All persons appearing as parameters of updates in the sequence,
    in order of first mention."""
    seen: List[Person] = []
    seen_set: Set[Person] = set()
    for u in seq:
        for p in u.params:
            if p not in seen_set:
                seen.append(p)
                seen_set.add(p)
    return tuple(seen)


# -- witness search ---------------------------------------------------------


def find_assignment_witness(
    seq: Sequence[Update], person: Person
) -> Optional[AssignmentWitness]:
    """An assignment witness for ``person`` in ``seq``, or None.

    Searches the latest qualifying pair; by Lemma 14(b) existence is what
    matters, not which pair.
    """
    last_cancel = _last_position(seq, "cancel", person)
    last_move_down = _last_position(seq, "move_down", person)
    requests = _positions(seq, "request", person)
    move_ups = _positions(seq, "move_up", person)
    for b in reversed(move_ups):
        if last_move_down is not None and last_move_down > b:
            continue
        for a in reversed(requests):
            if a >= b:
                continue
            if last_cancel is not None and last_cancel > a:
                continue
            return (a, b)
    return None


def find_waiting_witness(
    seq: Sequence[Update], person: Person
) -> Optional[WaitingWitness]:
    """A waiting witness for ``person`` in ``seq``, or None.

    Note: this implements the paper's literal Section 5.3 definition.  As
    our property-based tests discovered, existence of such a witness does
    *not* quite imply that P is waiting: if a duplicate request(P) arrives
    while P is assigned, the request is a no-op yet satisfies form (1).
    (Example: ``request(P), move_up(P), request(P)`` — P ends assigned.)
    The exact characterization is *waiting = known and not assigned*; see
    :func:`waiting_by_log`.  Where a witness and an assignment witness
    coexist, the assignment witness wins.
    """
    last_cancel = _last_position(seq, "cancel", person)
    last_move_up = _last_position(seq, "move_up", person)
    requests = _positions(seq, "request", person)
    # Form (1): a request with no later cancel or move_up.
    for a in reversed(requests):
        if last_cancel is not None and last_cancel > a:
            continue
        if last_move_up is not None and last_move_up > a:
            continue
        return a
    # Form (2): request then move_down, no cancel after the request and no
    # move_up after the move_down.
    move_downs = _positions(seq, "move_down", person)
    for b in reversed(move_downs):
        if last_move_up is not None and last_move_up > b:
            continue
        for a in reversed(requests):
            if a >= b:
                continue
            if last_cancel is not None and last_cancel > a:
                continue
            return (a, b)
    return None


# -- Lemma 14: witness characterization of the resulting state ---------------


def known_by_log(seq: Sequence[Update], person: Person) -> bool:
    """Lemma 14(a): P is known in the resulting state iff some request(P)
    is not followed by a cancel(P)."""
    requests = _positions(seq, "request", person)
    if not requests:
        return False
    last_cancel = _last_position(seq, "cancel", person)
    return last_cancel is None or last_cancel < requests[-1]


def assigned_by_log(seq: Sequence[Update], person: Person) -> bool:
    """Lemma 14(b): P is assigned in the resulting state iff an assignment
    witness for P exists in the sequence."""
    return find_assignment_witness(seq, person) is not None


def waiting_by_log(seq: Sequence[Update], person: Person) -> bool:
    """Lemma 14(c), amended: P is waiting in the resulting state iff P is
    known and not assigned.

    The paper states "iff a waiting witness exists", which over-counts in
    the duplicate-request corner case documented on
    :func:`find_waiting_witness`; the known-and-not-assigned form is exact
    (verified by the property-based tests) and still computable purely
    from the update log.
    """
    return known_by_log(seq, person) and not assigned_by_log(seq, person)


# -- Lemmas 15-19: transfer between a sequence and a subsequence -------------


def witness_retained(
    witness: Union[int, Tuple[int, int], None], kept: Set[int]
) -> bool:
    """Did the subsequence (by positions ``kept``) retain the witness?"""
    if witness is None:
        return False
    if isinstance(witness, tuple):
        return witness[0] in kept and witness[1] in kept
    return witness in kept


def waiting_transfer_holds(
    seq: Sequence[Update], kept: Set[int], person: Person
) -> bool:
    """Lemma 16's hypothesis, amended: the subsequence retains a waiting
    witness for P *and* contains no assignment witness of its own.

    The extra clause repairs the same duplicate-request corner case as
    :func:`waiting_by_log` (the paper's literal Lemma 16 fails on e.g.
    ``request, move_up, move_down, cancel, request`` with the subsequence
    ``{0, 1, 4}``).  It is checkable from the subsequence alone, which is
    exactly what a transaction sees.
    """
    witness = find_waiting_witness(seq, person)
    if not witness_retained(witness, kept):
        return False
    sub = [seq[i] for i in sorted(kept)]
    return find_assignment_witness(sub, person) is None


def retains_last(
    seq: Sequence[Update], kept: Set[int], name: str, person: Person
) -> bool:
    """True iff the subsequence contains the last ``name(person)`` update
    of ``seq`` — vacuously true when there is none (Lemmas 17-19)."""
    last = _last_position(seq, name, person)
    return last is None or last in kept


def retains_live_requests(
    seq: Sequence[Update], kept: Set[int], person: Person
) -> bool:
    """True iff the subsequence retains every request(P) occurring after
    the last cancel(P) of the full sequence (the "live" requests).

    This is the extra hypothesis our amended Lemma 19 needs.  The paper's
    literal Lemma 19 fails on duplicate requests: with
    ``request(R), move_up(R), request(R)`` and the subsequence keeping
    only the move_up and the *second* request, R is waiting in t (the
    retained request lands after the no-op move_up) but assigned in s.
    Retaining all live requests restores the transfer: if P were assigned
    in s, the witness built from the last move_up and a live request
    would also be present in the subsequence, contradicting P waiting in
    t.  Found by the property-based test suite.
    """
    last_cancel = _last_position(seq, "cancel", person)
    for i in _positions(seq, "request", person):
        if (last_cancel is None or i > last_cancel) and i not in kept:
            return False
    return True


# -- refined deficits for Theorems 20 and 21 ---------------------------------


def refined_overbooking_deficit(
    seq: Sequence[Update],
    kept: Iterable[int],
    actual_assigned: Sequence[Person],
) -> int:
    """Theorem 20(1) hypothesis: the number of persons P assigned in the
    actual state whose assignment witness was not retained by the seen
    subsequence.  This replaces the raw completeness deficit k."""
    kept_set = set(kept)
    deficit = 0
    for person in actual_assigned:
        witness = find_assignment_witness(seq, person)
        if not witness_retained(witness, kept_set):
            deficit += 1
    return deficit


def refined_underbooking_deficit(
    seq: Sequence[Update],
    kept: Iterable[int],
    actual_assigned: Sequence[Person],
) -> int:
    """Theorem 20(2) hypothesis: the number of persons P *not* assigned in
    the actual state for whom the seen subsequence misses the last
    cancel(P) or the last move_down(P) of the full sequence."""
    kept_set = set(kept)
    assigned = set(actual_assigned)
    deficit = 0
    for person in persons_mentioned(seq):
        if person in assigned:
            continue
        if not retains_last(seq, kept_set, "cancel", person):
            deficit += 1
            continue
        if not retains_last(seq, kept_set, "move_down", person):
            deficit += 1
    return deficit


def refined_waiting_deficit(
    seq: Sequence[Update],
    kept: Iterable[int],
    actual_waiting: Sequence[Person],
) -> int:
    """Theorem 21(2) first hypothesis: waiting persons whose waiting
    witness was not retained."""
    kept_set = set(kept)
    deficit = 0
    for person in actual_waiting:
        if not waiting_transfer_holds(seq, kept_set, person):
            deficit += 1
    return deficit


# -- Lemma 24: priority transfer ----------------------------------------------


def lemma24_hypothesis(
    seq: Sequence[Update],
    kept: Iterable[int],
    p: Person,
    q: Person,
) -> bool:
    """Lemma 24's hypothesis: the subsequence contains all move_up and
    move_down updates of the full sequence, and all request and cancel
    updates for P and Q."""
    kept_set = set(kept)
    for i, u in enumerate(seq):
        if u.name in ("move_up", "move_down") and i not in kept_set:
            return False
        if u.name in ("request", "cancel") and u.params in ((p,), (q,)):
            if i not in kept_set:
                return False
    return True
