"""Assembly of the Fly-by-Night airline application (Sections 2, 4, 5).

:func:`make_airline_application` wires the states, constraints and
fairness hooks into a :class:`~repro.core.application.Application`, and
:data:`PROPERTY_TABLE` records the paper's proved property matrix
(Section 4.1's worked examples), which the test suite re-verifies with the
sampling checkers.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ...core.application import Application
from ...core.properties import PropertyTable
from ...core.relations import CostBound
from .constraints import (
    DEFAULT_OVER_COST,
    DEFAULT_UNDER_COST,
    OVERBOOKING,
    UNDERBOOKING,
    OverbookingConstraint,
    UnderbookingConstraint,
    overbooking_bound,
    underbooking_bound,
)
from .priority import known, precedes
from .state import INITIAL_STATE, AirlineState, Person
from .transactions import DEFAULT_CAPACITY


def make_airline_application(
    capacity: int = DEFAULT_CAPACITY,
    over_cost: float = DEFAULT_OVER_COST,
    under_cost: float = DEFAULT_UNDER_COST,
) -> Application:
    """The Fly-by-Night application with parameterized capacity and costs."""
    return Application(
        name="fly-by-night",
        initial_state=INITIAL_STATE,
        constraints=(
            OverbookingConstraint(capacity, over_cost),
            UnderbookingConstraint(capacity, under_cost),
        ),
        transaction_families=("REQUEST", "CANCEL", "MOVE_UP", "MOVE_DOWN"),
        known=known,
        precedes=precedes,
    )


def bounds(
    over_cost: float = DEFAULT_OVER_COST,
    under_cost: float = DEFAULT_UNDER_COST,
) -> Tuple[CostBound, CostBound]:
    """The paper's (900k, 300k) cost-increase bounds."""
    return overbooking_bound(over_cost), underbooking_bound(under_cost)


#: Section 4.1's proved property matrix.  Tests verify each entry against
#: the generic sampling checkers in :mod:`repro.core.properties`.
PROPERTY_TABLE = PropertyTable(
    application_name="fly-by-night",
    update_increasing={
        ("request", OVERBOOKING): False,
        ("request", UNDERBOOKING): True,
        ("cancel", OVERBOOKING): False,
        ("cancel", UNDERBOOKING): True,
        ("move_up", OVERBOOKING): True,
        ("move_up", UNDERBOOKING): False,
        ("move_down", OVERBOOKING): False,
        ("move_down", UNDERBOOKING): True,
    },
    transaction_safe={
        ("REQUEST", OVERBOOKING): True,
        ("REQUEST", UNDERBOOKING): False,
        ("CANCEL", OVERBOOKING): True,
        ("CANCEL", UNDERBOOKING): False,
        ("MOVE_UP", OVERBOOKING): False,
        ("MOVE_UP", UNDERBOOKING): True,
        ("MOVE_DOWN", OVERBOOKING): True,
        ("MOVE_DOWN", UNDERBOOKING): False,
    },
    transaction_preserves={
        ("REQUEST", OVERBOOKING): True,
        ("REQUEST", UNDERBOOKING): False,
        ("CANCEL", OVERBOOKING): True,
        ("CANCEL", UNDERBOOKING): False,
        ("MOVE_UP", OVERBOOKING): True,
        ("MOVE_UP", UNDERBOOKING): True,
        ("MOVE_DOWN", OVERBOOKING): True,
        ("MOVE_DOWN", UNDERBOOKING): True,
    },
    transaction_compensates={
        ("MOVE_UP", UNDERBOOKING): True,
        ("MOVE_DOWN", OVERBOOKING): True,
    },
    preserves_priority={
        "REQUEST": True,
        "CANCEL": True,
        "MOVE_UP": True,
        "MOVE_DOWN": True,
    },
    strongly_preserves_priority={
        "REQUEST": True,
        "CANCEL": True,
        "MOVE_UP": False,
        "MOVE_DOWN": False,
    },
)


def person(i: int) -> Person:
    """The paper's passenger naming: P1, P2, ..."""
    return f"P{i}"


def random_state(
    rng: random.Random,
    max_people: int = 20,
    capacity: Optional[int] = None,
) -> AirlineState:
    """A random well-formed airline state.

    When ``capacity`` is given, the assigned-list size is biased to land
    near it (below, at, and above), so that samples exercise both
    constraints' interesting regions.
    """
    n = rng.randint(0, max_people)
    people = [person(i) for i in range(1, n + 1)]
    rng.shuffle(people)
    if capacity is not None and people:
        pivot_choices = [
            0,
            min(len(people), max(0, capacity - 1)),
            min(len(people), capacity),
            min(len(people), capacity + 1),
            rng.randint(0, len(people)),
        ]
        split = rng.choice(pivot_choices)
    else:
        split = rng.randint(0, len(people)) if people else 0
    return AirlineState(tuple(people[:split]), tuple(people[split:]))


def state_sample(
    seed: int = 0,
    count: int = 200,
    max_people: int = 20,
    capacity: Optional[int] = 8,
) -> List[AirlineState]:
    """A deterministic sample of well-formed states for property checks."""
    rng = random.Random(seed)
    sample = [AirlineState()]
    sample.extend(
        random_state(rng, max_people=max_people, capacity=capacity)
        for _ in range(count - 1)
    )
    return sample
