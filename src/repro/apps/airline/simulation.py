"""Running the airline application on the simulated SHARD system.

:func:`run_airline_scenario` wires a :class:`~repro.shard.ShardCluster`
to an airline workload: Poisson request/cancel arrivals at random nodes,
plus a periodic moving "agent" issuing MOVE_UP/MOVE_DOWN sweeps — either
at a single designated node (the centralized-movers policy of Sections
3.2/5.4/5.5) or independently at every node (the fully available,
overbooking-prone regime).  It returns the extracted formal execution and
the external-action ledger, ready for the theorem checkers and the
analysis modules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...core.execution import TimedExecution
from ...network.broadcast import BroadcastConfig
from ...network.link import DelayModel, UniformDelay
from ...network.partition import PartitionSchedule
from ...shard.cluster import ClusterConfig, ShardCluster
from ...shard.external import ExternalLedger
from ...shard.undo_redo import MergeEngineFactory, suffix_factory
from ...shard.workload import PeriodicSubmitter, PoissonSubmitter
from .state import AirlineState
from .timestamped import (
    TS_INITIAL_STATE,
    TSCancel,
    TSMoveDown,
    TSMoveUp,
    TSRequest,
)
from .transactions import Cancel, MoveDown, MoveUp, Request


@dataclass
class AirlineScenario:
    """Parameters of one simulated deployment + workload."""

    capacity: int = 20
    n_nodes: int = 3
    duration: float = 200.0
    request_rate: float = 1.0
    cancel_fraction: float = 0.15
    mover_interval: float = 2.0
    mover_nodes: Optional[Sequence[int]] = None  # None = every node
    request_nodes: Optional[Sequence[int]] = None  # None = every node
    seed: int = 0
    delay: Optional[DelayModel] = None
    partitions: Optional[PartitionSchedule] = None
    loss_probability: float = 0.0
    broadcast: Optional[BroadcastConfig] = None
    merge_factory: MergeEngineFactory = suffix_factory
    #: "baseline" = the paper's Section 2.3 design; "timestamped" = the
    #: Section 5.5 redesign with request timestamps in the database.
    design: str = "baseline"


@dataclass
class AirlineRun:
    """Everything a benchmark needs from one simulated run."""

    scenario: AirlineScenario
    cluster: ShardCluster
    execution: TimedExecution
    #: AirlineState for the baseline design, TSAirlineState for the
    #: timestamped redesign.
    final_state: object
    ledger: ExternalLedger
    requests_submitted: int
    movers_submitted: int


class _AirlineArrivals:
    """Request/cancel arrival mix with a growing passenger population.

    For the timestamped design, each request carries the simulated time
    of its submission (the "request timestamp" of Section 5.5)."""

    def __init__(self, cancel_fraction: float, timestamped: bool, clock):
        self.cancel_fraction = cancel_fraction
        self.timestamped = timestamped
        self.clock = clock
        self.next_person = 1
        self.people: List[str] = []

    def __call__(self, rng: random.Random):
        if self.people and rng.random() < self.cancel_fraction:
            person = rng.choice(self.people)
            return TSCancel(person) if self.timestamped else Cancel(person)
        person = f"P{self.next_person}"
        self.next_person += 1
        self.people.append(person)
        if self.timestamped:
            return TSRequest(person, self.clock())
        return Request(person)


def run_airline_scenario(scenario: AirlineScenario) -> AirlineRun:
    """Simulate the scenario to completion and extract its history."""
    if scenario.design not in ("baseline", "timestamped"):
        raise ValueError(f"unknown design {scenario.design!r}")
    timestamped = scenario.design == "timestamped"
    initial_state = TS_INITIAL_STATE if timestamped else AirlineState()
    cluster = ShardCluster(
        initial_state,
        ClusterConfig(
            n_nodes=scenario.n_nodes,
            seed=scenario.seed,
            delay=scenario.delay or UniformDelay(0.2, 1.0),
            partitions=scenario.partitions,
            loss_probability=scenario.loss_probability,
            broadcast=scenario.broadcast,
            merge_factory=scenario.merge_factory,
        ),
    )
    arrivals = _AirlineArrivals(
        scenario.cancel_fraction, timestamped, lambda: cluster.sim.now
    )
    requests = PoissonSubmitter(
        cluster,
        rate=scenario.request_rate,
        make_transaction=arrivals,
        rng=cluster.streams.stream("arrivals"),
        nodes=scenario.request_nodes,
        stop_at=scenario.duration,
    )
    mover_nodes = (
        list(scenario.mover_nodes)
        if scenario.mover_nodes is not None
        else list(range(scenario.n_nodes))
    )
    if timestamped:
        mover_pair = (
            TSMoveUp(scenario.capacity), TSMoveDown(scenario.capacity)
        )
    else:
        mover_pair = (MoveUp(scenario.capacity), MoveDown(scenario.capacity))
    movers = PeriodicSubmitter(
        cluster,
        interval=scenario.mover_interval,
        make_transactions=lambda: mover_pair,
        nodes=mover_nodes,
        stop_at=scenario.duration,
    )
    requests.start()
    movers.start()
    cluster.run(until=scenario.duration)
    cluster.quiesce()

    execution = cluster.extract_execution()
    final_state = cluster.nodes[0].state
    return AirlineRun(
        scenario=scenario,
        cluster=cluster,
        execution=execution,
        final_state=final_state,
        ledger=cluster.ledger,
        requests_submitted=requests.submitted,
        movers_submitted=movers.submitted,
    )
