"""The paper's three worked example executions, scripted exactly.

* :func:`section_3_1_execution` — the non-serializable execution of
  Section 3.1: capacity + 2 request/MOVE_UP pairs where the last two
  MOVE_UPs run with incomplete prefixes, producing a transiently
  overbooked state (s_204 in the paper) and the final assigned list
  ``P2, ..., P100, P102``;
* :func:`section_5_4_counterexample` — the execution after Theorem 23
  showing that centralizing MOVE_UPs and transitivity alone (without the
  per-person restriction) do *not* prevent overbooking, via duplicated
  requests and missed cancels;
* :func:`section_5_5_priority_inversion` — the Section 5.5 example where
  the moving agent learns request(Q) before the earlier request(P), so Q
  permanently outranks P; running the same script against the
  timestamp-ordered redesign restores request order.

All three are parameterized by ``capacity`` so tests can run them small
while the benchmarks reproduce the paper's capacity-100 instance.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...core.execution import Execution
from ...core.transaction import Transaction
from .state import INITIAL_STATE
from .timestamped import (
    TS_INITIAL_STATE,
    TSCancel,
    TSMoveDown,
    TSMoveUp,
    TSRequest,
)
from .transactions import Cancel, MoveDown, MoveUp, Request


def person(i: int) -> str:
    return f"P{i}"


def section_3_1_execution(capacity: int = 100) -> Execution:
    """The Section 3.1 example, generalized from capacity 100 to any
    capacity C: C + 2 blocks of (REQUEST(Pi), MOVE_UP), then a MOVE_DOWN
    and CANCEL(P1).

    All requests, the first C MOVE_UPs, and the cancel see complete
    prefixes.  MOVE_UP #C+1 sees the first C-1 blocks plus
    REQUEST(P_{C+1}); MOVE_UP #C+2 sees the first C-1 blocks plus
    REQUEST(P_{C+2}); the MOVE_DOWN sees everything except the two
    P_{C+2} transactions.
    """
    if capacity < 2:
        raise ValueError("the example needs capacity >= 2")
    c = capacity
    transactions: List[Transaction] = []
    prefixes: Dict[int, Tuple[int, ...]] = {}
    for i in range(1, c + 3):
        transactions.append(Request(person(i)))
        transactions.append(MoveUp(c))
    # MOVE_UP #C+1 is at index 2C+1; #C+2 at index 2C+3 (0-based).
    prefixes[2 * c + 1] = tuple(range(2 * (c - 1))) + (2 * c,)
    prefixes[2 * c + 3] = tuple(range(2 * (c - 1))) + (2 * c + 2,)
    transactions.append(MoveDown(c))  # index 2C+4
    prefixes[2 * c + 4] = tuple(range(2 * c + 2))
    transactions.append(Cancel(person(1)))  # index 2C+5, complete prefix

    all_prefixes = [
        prefixes.get(i, tuple(range(i))) for i in range(len(transactions))
    ]
    return Execution.run(INITIAL_STATE, transactions, all_prefixes)


def section_3_1_overbooked_index(capacity: int = 100) -> int:
    """Index into ``actual_states`` of the paper's s_204 analogue: the
    state right after the last MOVE_UP, overbooked by 2."""
    return 2 * capacity + 4


def section_5_4_counterexample(capacity: int = 100) -> Execution:
    """The example after Theorem 23: C + 1 blocks of

        REQUEST(Pi), CANCEL(Pi), REQUEST(Pi), MOVE_UP

    where each of the first C MOVE_UPs sees the first request of its own
    block (and all earlier movers and their requests) but not the cancels
    or second requests, and the final MOVE_UP additionally sees all the
    cancels.  The execution is transitive and the MOVE_UPs are
    centralized, yet the final state is overbooked — the per-person
    centralization hypothesis of Theorem 22 (or the single-request
    hypothesis of Theorem 23) is necessary.
    """
    c = capacity
    transactions: List[Transaction] = []
    prefixes: List[Tuple[int, ...]] = []

    def block_base(j: int) -> int:
        return 4 * (j - 1)

    first_requests: List[int] = []
    cancels: List[int] = []
    movers: List[int] = []
    for j in range(1, c + 2):
        base = block_base(j)
        pj = person(j)
        transactions.append(Request(pj))  # base
        prefixes.append(tuple(first_requests))
        first_requests.append(base)
        transactions.append(Cancel(pj))  # base + 1
        prefixes.append(tuple(first_requests))
        transactions.append(Request(pj))  # base + 2
        prefixes.append(tuple(first_requests) + (base + 1,))
        transactions.append(MoveUp(c))  # base + 3
        if j <= c:
            # first request of blocks 1..j, movers of blocks 1..j-1
            prefixes.append(tuple(sorted(first_requests + movers)))
            cancels.append(base + 1)
        else:
            # the last mover also sees the cancels of the earlier blocks
            # (but not its own block's cancel or any second request)
            prefixes.append(tuple(sorted(first_requests + movers + cancels)))
        movers.append(base + 3)

    return Execution.run(INITIAL_STATE, transactions, prefixes)


#: shared prefix script for the two Section 5.5 variants (0-based):
#: i0 REQUEST(A) / i1 CANCEL(A) / i2 REQUEST(A) again / i3 REQUEST(P) /
#: i4 REQUEST(Q) / i5..i8 the centralized moving agent.
_SECTION_5_5_PREFIXES: Tuple[Tuple[int, ...], ...] = (
    (),  # i0 REQUEST(A)#1
    (0,),  # i1 CANCEL(A)
    (0, 1),  # i2 REQUEST(A)#2
    (0, 1, 2),  # i3 REQUEST(P)
    (0, 1),  # i4 REQUEST(Q)
    (0,),  # i5 MOVE_UP: sees only request(A)#1 -> move_up(A)
    (0, 1, 4, 5),  # i6 MOVE_UP: A cancelled, Q waiting -> move_up(Q)
    (0, 1, 2, 4, 5, 6),  # i7 MOVE_DOWN: apparent overbooking -> move_down(Q)
    (0, 1, 2, 3, 4, 5, 6, 7),  # i8 MOVE_UP: complete; agent now knows P
)


def section_5_5_priority_inversion(capacity: int = 1) -> Execution:
    """The Section 5.5 example against the baseline design.

    REQUEST(P) precedes REQUEST(Q) in timestamp order, but the (fully
    centralized, transitive) moving agent learns request(Q) first.  A
    duplicated request for a filler person A makes the agent's view
    transiently overbooked, so it moves Q up and then down — landing Q at
    the head of the WAIT-LIST, permanently ahead of P (Theorem 25).
    """
    if capacity != 1:
        raise ValueError("the scripted example is built for capacity 1")
    a, p, q = "A", "P", "Q"
    transactions: List[Transaction] = [
        Request(a), Cancel(a), Request(a), Request(p), Request(q),
        MoveUp(1), MoveUp(1), MoveDown(1), MoveUp(1),
    ]
    return Execution.run(INITIAL_STATE, transactions, _SECTION_5_5_PREFIXES)


def section_5_5_with_timestamps(capacity: int = 1) -> Execution:
    """The same scenario against the Section 5.5 redesigned application
    (request timestamps in the database): the move_down re-inserts Q in
    timestamp order, so P keeps its rightful priority."""
    if capacity != 1:
        raise ValueError("the scripted example is built for capacity 1")
    a, p, q = "A", "P", "Q"
    transactions: List[Transaction] = [
        TSRequest(a, 0.0), TSCancel(a), TSRequest(a, 2.0),
        TSRequest(p, 3.0), TSRequest(q, 4.0),
        TSMoveUp(1), TSMoveUp(1), TSMoveDown(1), TSMoveUp(1),
    ]
    return Execution.run(TS_INITIAL_STATE, transactions, _SECTION_5_5_PREFIXES)
