"""Fly-by-Night Airlines database states (Section 2.1).

A state consists of two finite ordered lists of people:

* ``assigned`` — ASSIGNED-LIST: people notified that they have seats;
* ``waiting`` — WAIT-LIST: people who requested seats but are unassigned.

The well-formedness condition is that the two lists contain disjoint sets
of people (and, being sets presented as lists, no duplicates).  ``AL(s)``
and ``WL(s)`` are the list lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.state import State

Person = str


@dataclass(frozen=True)
class AirlineState(State):
    """An immutable Fly-by-Night database state."""

    assigned: Tuple[Person, ...] = ()
    waiting: Tuple[Person, ...] = ()

    def well_formed(self) -> bool:
        assigned, waiting = set(self.assigned), set(self.waiting)
        return (
            len(assigned) == len(self.assigned)
            and len(waiting) == len(self.waiting)
            and not (assigned & waiting)
        )

    # -- the paper's AL / WL shorthands ---------------------------------

    @property
    def al(self) -> int:
        """``AL(s)``: number of people on the assigned list."""
        return len(self.assigned)

    @property
    def wl(self) -> int:
        """``WL(s)``: number of people on the wait list."""
        return len(self.waiting)

    # -- membership helpers ----------------------------------------------

    def is_assigned(self, person: Person) -> bool:
        return person in self.assigned

    def is_waiting(self, person: Person) -> bool:
        return person in self.waiting

    def is_known(self, person: Person) -> bool:
        """Known entities (Section 4.2): on either list."""
        return person in self.assigned or person in self.waiting

    def known(self) -> Tuple[Person, ...]:
        """All known people: assigned first (in order), then waiting."""
        return self.assigned + self.waiting

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AirlineState(assigned={list(self.assigned)}, "
            f"waiting={list(self.waiting)})"
        )


INITIAL_STATE = AirlineState()
