"""The airline integrity constraints and their cost measures (Section 2.2).

* **Overbooking** (constraint 1): ``AL <= capacity``; violating costs
  ``over_cost`` per overbooked passenger:
  ``cost(s, 1) = over_cost * (AL(s) -. capacity)``.
* **Underbooking** (constraint 2): ``AL >= capacity or WL = 0``; an
  avoidably empty seat costs ``under_cost`` per waitlisted passenger who
  could have been seated:
  ``cost(s, 2) = under_cost * min(capacity -. AL(s), WL(s))``.

The paper's figures are capacity 100, $900 per overbooking and $300 per
avoidable underbooking.  Note every well-formed state has cost zero for at
least one of the two constraints (AL cannot be both above and below the
capacity), which Corollary 11 uses.
"""

from __future__ import annotations

from ...core.constraint import IntegrityConstraint
from ...core.monus import monus
from ...core.relations import CostBound, linear_bound
from ...core.state import State
from .state import AirlineState
from .transactions import DEFAULT_CAPACITY

#: the paper's dollar figures.
DEFAULT_OVER_COST = 900
DEFAULT_UNDER_COST = 300

OVERBOOKING = "overbooking"
UNDERBOOKING = "underbooking"


class OverbookingConstraint(IntegrityConstraint):
    """Integrity Constraint 1: overbooking should not occur."""

    name = OVERBOOKING

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        over_cost: float = DEFAULT_OVER_COST,
    ):
        self.capacity = capacity
        self.over_cost = over_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, AirlineState)
        return self.over_cost * monus(state.al, self.capacity)


class UnderbookingConstraint(IntegrityConstraint):
    """Integrity Constraint 2: underbooking should not occur if avoidable."""

    name = UNDERBOOKING

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        under_cost: float = DEFAULT_UNDER_COST,
    ):
        self.capacity = capacity
        self.under_cost = under_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, AirlineState)
        return self.under_cost * min(monus(self.capacity, state.al), state.wl)


def overbooking_bound(over_cost: float = DEFAULT_OVER_COST) -> CostBound:
    """Section 4.1: 900k bounds the cost increase for overbooking — each
    missing update can hide at most one seat assignment."""
    return linear_bound(OVERBOOKING, over_cost)


def underbooking_bound(under_cost: float = DEFAULT_UNDER_COST) -> CostBound:
    """Section 4.1: 300k bounds the cost increase for underbooking."""
    return linear_bound(UNDERBOOKING, under_cost)
