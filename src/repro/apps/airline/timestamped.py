"""The Section 5.5 redesign: request timestamps stored in the database.

The baseline design can permanently invert the priority of two requests
when the moving agent learns about them out of order (the Section 5.5
example).  The paper's suggested fix is to include request timestamps
explicitly in the database and keep both lists sorted in timestamp order,
so that when a late-arriving request(P) becomes known, P is inserted
*ahead* of any later requester — and a move_down(Q) re-inserts Q in
timestamp order rather than at the head.

This module implements that redesigned application.  The fairness
benchmark (E7) contrasts the two designs on the paper's scenario.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Tuple

from ...core.constraint import IntegrityConstraint
from ...core.monus import monus
from ...core.state import State
from ...core.transaction import Decision, ExternalAction, Transaction
from ...core.update import IDENTITY, Update
from .state import Person
from .transactions import (
    DEFAULT_CAPACITY,
    INFORM_ASSIGNED,
    INFORM_WAITLISTED,
)

#: an entry is (request timestamp, person); tuples sort correctly.
Entry = Tuple[float, Person]


@dataclass(frozen=True)
class TSAirlineState(State):
    """Both lists kept sorted ascending by request timestamp."""

    assigned: Tuple[Entry, ...] = ()
    waiting: Tuple[Entry, ...] = ()

    def well_formed(self) -> bool:
        people_a = [p for _, p in self.assigned]
        people_w = [p for _, p in self.waiting]
        return (
            len(set(people_a)) == len(people_a)
            and len(set(people_w)) == len(people_w)
            and not (set(people_a) & set(people_w))
            and list(self.assigned) == sorted(self.assigned)
            and list(self.waiting) == sorted(self.waiting)
        )

    @property
    def al(self) -> int:
        return len(self.assigned)

    @property
    def wl(self) -> int:
        return len(self.waiting)

    def entry_for(self, person: Person):
        for entry in self.assigned + self.waiting:
            if entry[1] == person:
                return entry
        return None

    def is_known(self, person: Person) -> bool:
        return self.entry_for(person) is not None

    def known(self) -> Tuple[Person, ...]:
        return tuple(p for _, p in self.assigned + self.waiting)


TS_INITIAL_STATE = TSAirlineState()


def _insert(entries: Tuple[Entry, ...], entry: Entry) -> Tuple[Entry, ...]:
    result = list(entries)
    insort(result, entry)
    return tuple(result)


def _remove(entries: Tuple[Entry, ...], person: Person) -> Tuple[Entry, ...]:
    return tuple(e for e in entries if e[1] != person)


@dataclass(frozen=True, repr=False)
class TSUpdate(Update):
    person: Person

    @property
    def params(self) -> Tuple:
        return (self.person,)


@dataclass(frozen=True, repr=False)
class TSRequestUpdate(TSUpdate):
    """request(P, ts): insert P into the wait list in timestamp order."""

    timestamp: float = 0.0
    name = "request"

    @property
    def params(self) -> Tuple:
        return (self.person, self.timestamp)

    def apply(self, state: State) -> TSAirlineState:
        assert isinstance(state, TSAirlineState)
        if state.is_known(self.person):
            return state
        return TSAirlineState(
            state.assigned, _insert(state.waiting, (self.timestamp, self.person))
        )


class TSCancelUpdate(TSUpdate):
    name = "cancel"

    def apply(self, state: State) -> TSAirlineState:  # shardlint: ignore[R6] -- §5.5 redesign deviates from the canonical footprint by design
        assert isinstance(state, TSAirlineState)
        return TSAirlineState(
            _remove(state.assigned, self.person),
            _remove(state.waiting, self.person),
        )


class TSMoveUpUpdate(TSUpdate):
    """move_up(P): move P (with its request timestamp) to the assigned
    list, kept in timestamp order."""

    name = "move_up"

    def apply(self, state: State) -> TSAirlineState:  # shardlint: ignore[R6] -- §5.5 redesign deviates from the canonical footprint by design
        assert isinstance(state, TSAirlineState)
        entry = next((e for e in state.waiting if e[1] == self.person), None)
        if entry is None:
            return state
        return TSAirlineState(
            _insert(state.assigned, entry), _remove(state.waiting, self.person)
        )


class TSMoveDownUpdate(TSUpdate):
    """move_down(P): re-insert P into the wait list *in timestamp order*
    — the Section 5.5 fix."""

    name = "move_down"

    def apply(self, state: State) -> TSAirlineState:  # shardlint: ignore[R6] -- §5.5 redesign deviates from the canonical footprint by design
        assert isinstance(state, TSAirlineState)
        entry = next((e for e in state.assigned if e[1] == self.person), None)
        if entry is None:
            return state
        return TSAirlineState(
            _remove(state.assigned, self.person), _insert(state.waiting, entry)
        )


@dataclass(frozen=True, repr=False)
class TSRequest(Transaction):
    """REQUEST(P) carrying its request timestamp into the database."""

    person: Person
    timestamp: float = 0.0
    name = "REQUEST"

    @property
    def params(self) -> Tuple:
        return (self.person, self.timestamp)

    def decide(self, state: State) -> Decision:
        return Decision(TSRequestUpdate(self.person, self.timestamp))


@dataclass(frozen=True, repr=False)
class TSCancel(Transaction):
    person: Person
    name = "CANCEL"

    @property
    def params(self) -> Tuple:
        return (self.person,)

    def decide(self, state: State) -> Decision:
        return Decision(TSCancelUpdate(self.person))


@dataclass(frozen=True, repr=False)
class TSMoveUp(Transaction):
    """MOVE_UP: seat the *earliest-requested* waiting person."""

    capacity: int = DEFAULT_CAPACITY
    name = "MOVE_UP"

    @property
    def params(self) -> Tuple:
        return (self.capacity,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, TSAirlineState)
        if state.al < self.capacity and state.wl > 0:
            person = state.waiting[0][1]
            return Decision(
                TSMoveUpUpdate(person),
                (ExternalAction(INFORM_ASSIGNED, person),),
            )
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class TSMoveDown(Transaction):
    """MOVE_DOWN: demote the *latest-requested* assigned person."""

    capacity: int = DEFAULT_CAPACITY
    name = "MOVE_DOWN"

    @property
    def params(self) -> Tuple:
        return (self.capacity,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, TSAirlineState)
        if state.al > self.capacity:
            person = state.assigned[-1][1]
            return Decision(
                TSMoveDownUpdate(person),
                (ExternalAction(INFORM_WAITLISTED, person),),
            )
        return Decision(IDENTITY)


class TSOverbookingConstraint(IntegrityConstraint):
    name = "overbooking"

    def __init__(self, capacity: int = DEFAULT_CAPACITY, over_cost: float = 900):
        self.capacity = capacity
        self.over_cost = over_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, TSAirlineState)
        return self.over_cost * monus(state.al, self.capacity)


class TSUnderbookingConstraint(IntegrityConstraint):
    name = "underbooking"

    def __init__(self, capacity: int = DEFAULT_CAPACITY, under_cost: float = 300):
        self.capacity = capacity
        self.under_cost = under_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, TSAirlineState)
        return self.under_cost * min(monus(self.capacity, state.al), state.wl)


def ts_known(state: State) -> Tuple[Person, ...]:
    assert isinstance(state, TSAirlineState)
    return state.known()


def ts_precedes(state: State, p: Person, q: Person) -> bool:
    """Priority for the redesign: assigned before waiting; within each
    list, earlier request timestamp first."""
    assert isinstance(state, TSAirlineState)
    ep, eq = state.entry_for(p), state.entry_for(q)
    if ep is None or eq is None:
        return False
    p_assigned = any(e[1] == p for e in state.assigned)
    q_assigned = any(e[1] == q for e in state.assigned)
    if p_assigned != q_assigned:
        return p_assigned
    return ep < eq
