"""The four airline update families (Section 2.3).

Updates are pure state transformers; the decision parts that choose them
live in :mod:`repro.apps.airline.transactions`.

* ``request(P)`` — add P to the end of the WAIT-LIST, unless P is already
  on either list (duplicate requests do not change P's priority — a policy
  decision, Section 5.1);
* ``cancel(P)`` — remove P from whichever list holds it;
* ``move_up(P)`` — if P is waiting, move P to the end of the
  ASSIGNED-LIST; a ``move_up(P)`` applied when P is already assigned is a
  no-op (Section 5.1's second policy decision);
* ``move_down(P)`` — if P is assigned, move P to the **head** of the
  WAIT-LIST.

A note on ``move_down``: the program text in Section 2.3 reads "add P to
end of WAIT-LIST", but Section 4.2 asserts that all four transactions
preserve priority and Section 5.5 states that a moved-down person lands
"at the head of the WAIT-LIST".  Appending to the end would demote the
moved-down person below every waiting person — breaking both claims (a
person leaving the assigned list outranks everyone merely waiting, and
must stay that way).  Head insertion is the unique placement consistent
with the paper's own theorems, so that is what we implement; the
discrepancy is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.state import State
from ...core.update import Update
from .state import AirlineState, Person


@dataclass(frozen=True, repr=False)
class AirlineUpdate(Update):
    """Base for the four parameterized update families."""

    person: Person

    @property
    def params(self) -> Tuple:
        return (self.person,)


class RequestUpdate(AirlineUpdate):
    """``request(P)``: append P to the wait list if P is unknown."""

    name = "request"

    def apply(self, state: State) -> AirlineState:
        assert isinstance(state, AirlineState)
        if state.is_known(self.person):
            return state
        return AirlineState(state.assigned, state.waiting + (self.person,))


class CancelUpdate(AirlineUpdate):
    """``cancel(P)``: remove P from whichever list holds it."""

    name = "cancel"

    def apply(self, state: State) -> AirlineState:
        assert isinstance(state, AirlineState)
        if not state.is_known(self.person):
            return state
        return AirlineState(
            tuple(p for p in state.assigned if p != self.person),
            tuple(p for p in state.waiting if p != self.person),
        )


class MoveUpUpdate(AirlineUpdate):
    """``move_up(P)``: if P is waiting, move P to the end of the assigned
    list; otherwise do nothing."""

    name = "move_up"

    def apply(self, state: State) -> AirlineState:
        assert isinstance(state, AirlineState)
        if not state.is_waiting(self.person):
            return state
        return AirlineState(
            state.assigned + (self.person,),
            tuple(p for p in state.waiting if p != self.person),
        )


class MoveDownUpdate(AirlineUpdate):
    """``move_down(P)``: if P is assigned, move P to the *head* of the
    wait list; otherwise do nothing.  See the module docstring for why
    head (not end) insertion is the paper-consistent semantics."""

    name = "move_down"

    def apply(self, state: State) -> AirlineState:
        assert isinstance(state, AirlineState)
        if not state.is_assigned(self.person):
            return state
        return AirlineState(
            tuple(p for p in state.assigned if p != self.person),
            (self.person,) + state.waiting,
        )
