"""A minimal resource-counter application.

This is the smallest application exhibiting the paper's structure: a
single integer ``value`` (think "resources allocated"), an upper-bound
integrity constraint with a linear cost, an unsafe allocating transaction
whose decision checks the bound against its (possibly stale) view, and a
compensating deallocating transaction.  It is used by the core test suite
and by the quickstart example; the airline application is the paper's
full-size counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.application import Application
from ..core.constraint import IntegrityConstraint
from ..core.monus import monus
from ..core.properties import PropertyTable
from ..core.relations import CostBound, linear_bound
from ..core.state import State
from ..core.transaction import Decision, ExternalAction, Transaction
from ..core.update import IDENTITY, Update


@dataclass(frozen=True)
class CounterState(State):
    """A single nonnegative counter."""

    value: int = 0

    def well_formed(self) -> bool:
        return self.value >= 0


@dataclass(frozen=True, repr=False)
class AddUpdate(Update):
    """``add(n)``: increase the counter by ``n`` (floored at zero)."""

    amount: int
    name = "add"

    @property
    def params(self) -> Tuple:
        return (self.amount,)

    def apply(self, state: State) -> CounterState:
        assert isinstance(state, CounterState)
        return CounterState(max(0, state.value + self.amount))


class UpperBoundConstraint(IntegrityConstraint):
    """``value <= limit``, costing ``unit_cost`` per unit of excess."""

    name = "upper_bound"

    def __init__(self, limit: int, unit_cost: float = 1.0):
        self.limit = limit
        self.unit_cost = unit_cost

    def cost(self, state: State) -> float:
        assert isinstance(state, CounterState)
        return self.unit_cost * monus(state.value, self.limit)


@dataclass(frozen=True, repr=False)
class Allocate(Transaction):
    """Allocate one unit if the observed state is below the limit.

    Unsafe for the upper-bound constraint (its ``add(1)`` update can
    overshoot when replayed against fuller states) but preserves its cost:
    it only allocates when the state it believes will result satisfies the
    constraint.
    """

    limit: int
    name = "ALLOCATE"

    @property
    def params(self) -> Tuple:
        return (self.limit,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, CounterState)
        if state.value < self.limit:
            return Decision(
                AddUpdate(1), (ExternalAction("granted", state.value),)
            )
        return Decision(IDENTITY)


@dataclass(frozen=True, repr=False)
class Release(Transaction):
    """Release one unit if the observed state exceeds the limit — the
    compensating transaction for the upper-bound constraint."""

    limit: int
    name = "RELEASE"

    @property
    def params(self) -> Tuple:
        return (self.limit,)

    def decide(self, state: State) -> Decision:
        assert isinstance(state, CounterState)
        if state.value > self.limit:
            return Decision(
                AddUpdate(-1), (ExternalAction("revoked", state.value),)
            )
        return Decision(IDENTITY)


#: the app's declared property matrix, the counter analogue of the
#: airline table: ``add`` can raise the upper-bound cost (add(1) from a
#: full counter), so ALLOCATE is unsafe but cost-preserving (it only
#: allocates below the observed limit); RELEASE only lowers the counter,
#: so it is safe, vacuously preserving, and compensating.  Verified
#: against freshly derived certificates by the shared harness in
#: ``tests/core/test_certify_tables.py``.
PROPERTY_TABLE = PropertyTable(
    application_name="counter",
    update_increasing={
        ("add", "upper_bound"): True,
    },
    transaction_safe={
        ("ALLOCATE", "upper_bound"): False,
        ("RELEASE", "upper_bound"): True,
    },
    transaction_preserves={
        ("ALLOCATE", "upper_bound"): True,
        ("RELEASE", "upper_bound"): True,
    },
    transaction_compensates={
        ("RELEASE", "upper_bound"): True,
    },
)


def make_counter_application(limit: int = 10, unit_cost: float = 1.0) -> Application:
    return Application(
        name="counter",
        initial_state=CounterState(0),
        constraints=(UpperBoundConstraint(limit, unit_cost),),
        transaction_families=("ALLOCATE", "RELEASE"),
    )


def counter_bound(unit_cost: float = 1.0) -> CostBound:
    """Each missing update hides at most one allocation: f(k) = unit * k."""
    return linear_bound("upper_bound", unit_cost)
