"""One registry over every runnable application in the tree.

The paper claims its correctness conditions generalize across
resource-allocation domains (Section 1.1); the repo backs that claim
with six applications.  Until now each lived behind its own factory
with its own initial state and cost function, so cross-app drivers
(the workload generator, future comparison harnesses) had to hard-code
the list.  This module is the single name -> application map.

Each :class:`AppEntry` carries what a black-box driver needs:

* the initial state every replica boots from;
* a cost-function factory, parameterized by the same numeric knobs the
  workload specs expose (``capacity``, ``limit``, ...);
* the transaction families the app can emit, for sanity checks.

Banking is the one special case: :func:`make_banking_application`
builds a *per-account* constraint set, which is the right granularity
for the paper's three-account example but not for a workload over a
million Zipf-distributed accounts.  Its entry therefore prices the
aggregate overdraft (the sum the per-account constraints would add up
to), which is well-defined for any account population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from ..core.state import State
from .airline.application import make_airline_application
from .airline.state import INITIAL_STATE as INITIAL_AIRLINE_STATE
from .banking.state import INITIAL_BANK_STATE, BankState
from .counter import CounterState, make_counter_application
from .dictionary.dictionary import (
    INITIAL_DICT_STATE,
    make_dictionary_application,
)
from .inventory import INITIAL_INVENTORY_STATE, make_inventory_application
from .nameserver.nameserver import (
    INITIAL_NS_STATE,
    make_nameserver_application,
)

CostFn = Callable[[State], float]
#: knob name -> value, e.g. {"capacity": 10.0}; factories take what they
#: need and ignore the rest.
Params = Mapping[str, float]


def _total_overdraft(state: State) -> float:
    """Aggregate overdraft cost for arbitrary account populations (see
    module docstring; deficits are ints, so summation order is moot)."""
    assert isinstance(state, BankState)
    return float(state.total_overdraft)


@dataclass(frozen=True)
class AppEntry:
    """Everything a generic driver needs to run one application."""

    name: str
    initial_state: State
    make_cost: Callable[[Params], CostFn]
    families: Tuple[str, ...]


_REGISTRY: Dict[str, AppEntry] = {
    "airline": AppEntry(
        name="airline",
        initial_state=INITIAL_AIRLINE_STATE,
        make_cost=lambda p: make_airline_application(
            int(p.get("capacity", 10))
        ).cost,
        families=("REQUEST", "CANCEL", "MOVE_UP", "MOVE_DOWN"),
    ),
    "banking": AppEntry(
        name="banking",
        initial_state=INITIAL_BANK_STATE,
        make_cost=lambda p: _total_overdraft,
        families=(
            "DEPOSIT", "WITHDRAW", "TRANSFER", "COVER", "COVER_WORST",
            "AUDIT",
        ),
    ),
    "counter": AppEntry(
        name="counter",
        initial_state=CounterState(0),
        make_cost=lambda p: make_counter_application(
            int(p.get("limit", 10))
        ).cost,
        families=("ALLOCATE", "RELEASE"),
    ),
    "dictionary": AppEntry(
        name="dictionary",
        initial_state=INITIAL_DICT_STATE,
        make_cost=lambda p: make_dictionary_application(
            int(p.get("capacity", 100))
        ).cost,
        families=("INSERT", "DELETE", "PRUNE", "QUERY"),
    ),
    "inventory": AppEntry(
        name="inventory",
        initial_state=INITIAL_INVENTORY_STATE,
        make_cost=lambda p: make_inventory_application().cost,
        families=(
            "ORDER", "CANCEL_ORDER", "COMMIT", "RENEGE", "RESTOCK", "SHIP",
        ),
    ),
    "nameserver": AppEntry(
        name="nameserver",
        initial_state=INITIAL_NS_STATE,
        make_cost=lambda p: make_nameserver_application().cost,
        families=(
            "REGISTER", "UNREGISTER", "ADD_MEMBER", "REMOVE_MEMBER",
            "SCRUB", "LOOKUP",
        ),
    ),
}

#: every registered application name, alphabetical.
APP_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def app_entry(name: str) -> AppEntry:
    """The registry entry for ``name``; raises ``KeyError`` with the
    known names listed otherwise."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {', '.join(APP_NAMES)}"
        ) from None
