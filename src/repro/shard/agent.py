"""A distributed implementation of the centralized "agent" (Section 3.2).

The paper suggests users "imagine the existence of a centralized agent"
for a group G of transactions (e.g. all the MOVE_UPs and MOVE_DOWNs),
and notes the abstraction "could be useful even if there is actually no
such centralized agent, but rather if (using some locking strategy, for
example), the agent is implemented in a distributed way".

This module implements the lock as a migrating **token**:

* exactly one node holds the token at a time; only the holder may
  initiate G-transactions, so each one sees all earlier ones —
  centralization holds by construction;
* a node wanting to run a G-transaction requests the token from the
  current holder; the token transfer piggybacks the holder's entire
  known set, so the new holder's first G-transaction also sees
  everything the old agent saw (transitivity across migrations);
* if the holder is unreachable (partition), policy decides:
  ``"block"`` rejects the transaction (centralization preserved,
  availability sacrificed — the trade Theorem 22 prices), while
  ``"local"`` runs it anyway (availability preserved, centralization —
  and with it the no-overbooking guarantee — forfeited).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.transaction import Transaction

TOKEN_REQUEST = "token_request"
TOKEN_GRANT = "token_grant"


@dataclass
class AgentStats:
    requested: int = 0
    served_with_token: int = 0
    served_locally: int = 0  # "local" policy fallbacks
    rejected: int = 0
    migrations: int = 0
    #: time from request to initiation for token-served transactions.
    latencies: List[float] = field(default_factory=list)

    @property
    def availability(self) -> float:
        served = self.served_with_token + self.served_locally
        return served / self.requested if self.requested else 1.0


@dataclass
class _PendingGrant:
    requester: int
    transaction: Transaction
    requested_at: float
    timeout_handle: object
    done: bool = False


class TokenAgent:
    """Token-based serialization of one transaction group."""

    def __init__(
        self,
        cluster,
        name: str = "agent",
        home: int = 0,
        policy: str = "block",
        timeout: float = 10.0,
    ):
        if policy not in ("block", "local"):
            raise ValueError(f"unknown policy {policy!r}")
        self.cluster = cluster
        self.name = name
        self.holder = home
        self.policy = policy
        self.timeout = timeout
        self.stats = AgentStats()
        self._pending: Dict[int, _PendingGrant] = {}
        self._next_req = 0

    # -- submission ---------------------------------------------------------

    def submit(self, node_id: int, transaction: Transaction) -> None:
        """Schedule a G-transaction from ``node_id`` now."""
        cluster = self.cluster

        def fire() -> None:
            self.stats.requested += 1
            if node_id == self.holder:
                cluster.initiate_now(node_id, transaction)
                self.stats.served_with_token += 1
                self.stats.latencies.append(0.0)
                return
            if not cluster.network.connected(node_id, self.holder):
                self._unreachable(node_id, transaction)
                return
            req_id = self._next_req
            self._next_req += 1
            handle = cluster.sim.schedule(
                self.timeout, lambda: self._on_timeout(req_id)
            )
            self._pending[req_id] = _PendingGrant(
                requester=node_id,
                transaction=transaction,
                requested_at=cluster.sim.now,
                timeout_handle=handle,
            )
            cluster.network.send(
                node_id,
                self.holder,
                (TOKEN_REQUEST, self.name, req_id, node_id),
            )

        cluster.sim.schedule(0.0, fire)

    # -- message handling ------------------------------------------------------

    def handle(self, node_id: int, src: int, payload: Tuple) -> None:
        kind = payload[0]
        if kind == TOKEN_REQUEST:
            _, _name, req_id, requester = payload
            if node_id != self.holder:
                # stale request racing a migration; drop — the requester's
                # timeout covers it.
                return
            items = self.cluster.broadcast.known_items(node_id)
            self.holder = requester  # the grant is authoritative
            self.stats.migrations += 1
            self.cluster.network.send(
                node_id, requester, (TOKEN_GRANT, self.name, req_id, items)
            )
        elif kind == TOKEN_GRANT:
            _, _name, req_id, items = payload
            pending = self._pending.pop(req_id, None)
            if pending is None or pending.done:
                return
            pending.done = True
            pending.timeout_handle.cancel()
            self.cluster.broadcast.merge_items(pending.requester, items)
            self.cluster.initiate_now(pending.requester, pending.transaction)
            self.stats.served_with_token += 1
            self.stats.latencies.append(
                self.cluster.sim.now - pending.requested_at
            )

    # -- failure outcomes -----------------------------------------------------------

    def _unreachable(self, node_id: int, transaction: Transaction) -> None:
        if self.policy == "local":
            self.cluster.initiate_now(node_id, transaction)
            self.stats.served_locally += 1
        else:
            self.stats.rejected += 1

    def _on_timeout(self, req_id: int) -> None:
        pending = self._pending.pop(req_id, None)
        if pending is None or pending.done:
            return
        pending.done = True
        self._unreachable(pending.requester, pending.transaction)
