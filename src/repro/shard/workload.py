"""Generic workload drivers for a SHARD cluster.

Drivers schedule transaction submissions into a cluster's simulator:

* :class:`PoissonSubmitter` — open-loop arrivals at a given rate; each
  arrival asks a factory for the transaction and a node chooser for the
  origin node;
* :class:`PeriodicSubmitter` — fixed-interval submissions (e.g. the
  moving "agent" running MOVE_UP/MOVE_DOWN sweeps), at one node
  (centralized policy) or at all nodes (decentralized).

Application-specific mixes (the airline scenario, banking, inventory) are
assembled from these in each app's ``simulation`` module.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Sequence

from ..core.transaction import Transaction
from .cluster import ShardCluster

TransactionFactory = Callable[[random.Random], Optional[Transaction]]


class PoissonSubmitter:
    """Open-loop Poisson arrivals of transactions."""

    def __init__(
        self,
        cluster: ShardCluster,
        rate: float,
        make_transaction: TransactionFactory,
        rng: random.Random,
        nodes: Optional[Sequence[int]] = None,
        stop_at: Optional[float] = None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.cluster = cluster
        self.rate = rate
        self.make_transaction = make_transaction
        self.rng = rng
        self.nodes = list(nodes) if nodes is not None else list(
            range(len(cluster.nodes))
        )
        self.stop_at = stop_at
        self.submitted = 0

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self.rng.expovariate(self.rate)
        when = self.cluster.sim.now + gap
        if self.stop_at is not None and when > self.stop_at:
            return
        self.cluster.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        transaction = self.make_transaction(self.rng)
        if transaction is not None:
            node = self.rng.choice(self.nodes)
            self.cluster.submit(node, transaction)
            self.submitted += 1
        self._schedule_next()


class PeriodicSubmitter:
    """Fixed-interval submissions of one or more transactions per tick."""

    def __init__(
        self,
        cluster: ShardCluster,
        interval: float,
        make_transactions: Callable[[], Iterable[Transaction]],
        nodes: Sequence[int],
        stop_at: Optional[float] = None,
        phase: float = 0.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        self.interval = interval
        self.make_transactions = make_transactions
        self.nodes = list(nodes)
        self.stop_at = stop_at
        self.phase = phase
        self.submitted = 0

    def start(self) -> None:
        self.cluster.sim.schedule(self.phase + self.interval, self._fire)

    def _fire(self) -> None:
        if self.stop_at is not None and self.cluster.sim.now > self.stop_at:
            return
        for node in self.nodes:
            for transaction in self.make_transactions():
                self.cluster.submit(node, transaction)
                self.submitted += 1
        self.cluster.sim.schedule(self.interval, self._fire)
