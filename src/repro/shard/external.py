"""The external-action ledger.

External actions are irreversible: SHARD performs them exactly once, at
the transaction's origin node, when the decision part runs.  The ledger
records every action with its time, origin and transaction — the raw
material for the thrashing analysis (how often was the same passenger
told "you have a seat" / "you lost it"?) and for checking database /
external-world consistency at the end of a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.transaction import ExternalAction


@dataclass(frozen=True)
class LedgerEntry:
    time: float
    origin: int
    txid: int
    action: ExternalAction


class ExternalLedger:
    """An append-only record of every external action performed."""

    def __init__(self) -> None:
        self._entries: List[LedgerEntry] = []

    def record(
        self,
        time: float,
        origin: int,
        txid: int,
        actions: Tuple[ExternalAction, ...],
    ) -> None:
        for action in actions:
            self._entries.append(LedgerEntry(time, origin, txid, action))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> Tuple[LedgerEntry, ...]:
        return tuple(self._entries)

    def by_target(self) -> Dict[object, List[LedgerEntry]]:
        """Entries grouped by the affected entity, in time order."""
        grouped: Dict[object, List[LedgerEntry]] = {}
        for entry in self._entries:
            grouped.setdefault(entry.action.target, []).append(entry)
        return grouped

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self._entries)
        return sum(1 for e in self._entries if e.action.kind == kind)
