"""Reconstructing the formal execution from a SHARD run.

The serial order of the formal execution is the global timestamp order of
the transactions; each transaction's prefix subsequence is the set of
transactions its origin node's log contained when the decision ran.  The
Lamport clock guarantees every seen transaction has a smaller timestamp,
so the prefix subsequence condition holds *by construction* — this module
asserts it rather than assumes it.

With ``verify=True`` the extracted execution is re-derived through
:meth:`Execution.run`, and the re-run decisions are checked against the
updates the simulator actually produced — the formal model and the system
simulation must agree exactly (condition (3)).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..core.execution import Execution, InvalidExecutionError, TimedExecution
from ..core.state import State
from ..replica import UpdateRecord


def extract_execution(
    initial_state: State,
    records: Iterable[UpdateRecord],
    verify: bool = True,
) -> TimedExecution:
    """Build the paper's execution object from a run's update records."""
    ordered = sorted(records, key=lambda r: r.ts)
    index_of: Dict[int, int] = {r.txid: i for i, r in enumerate(ordered)}

    transactions = [r.transaction for r in ordered]
    prefixes: List[tuple] = []
    for i, record in enumerate(ordered):
        prefix = sorted(index_of[txid] for txid in record.seen_txids)
        if prefix and prefix[-1] >= i:
            raise InvalidExecutionError(
                f"transaction {record.txid} saw a transaction with a larger "
                "timestamp; Lamport clock invariant violated"
            )
        prefixes.append(tuple(prefix))

    execution = Execution.run(initial_state, transactions, prefixes)

    if verify:
        for i, record in enumerate(ordered):
            if execution.updates[i] != record.update:
                raise InvalidExecutionError(
                    f"re-derived update for transaction {record.txid} "
                    f"({execution.updates[i]!r}) differs from the one the "
                    f"simulator produced ({record.update!r})"
                )

    times = [r.real_time for r in ordered]
    return TimedExecution(execution, times)
