"""The assembled SHARD system: nodes + network + reliable broadcast.

A :class:`ShardCluster` owns the simulator, the partition-aware network,
the broadcast layer and the fully replicated nodes.  Transactions are
submitted to a node at a simulated time; the node runs the decision part
against its local copy immediately (this is the availability story — no
cross-node coordination on the critical path), and the update propagates
via flooding and anti-entropy.

After a run, :meth:`quiesce` heals everything and drains dissemination so
that mutual consistency can be asserted, and
:meth:`extract_execution` rebuilds the paper's formal execution object
from the run for analysis by the core/theorem machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.execution import TimedExecution
from ..core.state import State
from ..core.transaction import Transaction
from ..gossip import GOSSIP_KINDS
from ..network.broadcast import BroadcastConfig, ReliableBroadcast
from ..network.link import DelayModel, FixedDelay
from ..network.network import Network
from ..network.partition import PartitionSchedule
from ..replica import MergeOutcome, UpdateRecord
from ..sim.engine import Simulator
from ..sim.rng import SeededStreams
from ..sim.trace import NULL_TRACER, Tracer
from .external import ExternalLedger
from .history import extract_execution
from .agent import TOKEN_GRANT, TOKEN_REQUEST, TokenAgent
from .node import ShardNode
from .sync import SyncManager
from .undo_redo import MergeEngineFactory, suffix_factory


@dataclass
class ClusterConfig:
    n_nodes: int = 3
    seed: int = 0
    delay: Optional[DelayModel] = None
    partitions: Optional[PartitionSchedule] = None
    loss_probability: float = 0.0
    broadcast: Optional[BroadcastConfig] = None
    merge_factory: MergeEngineFactory = suffix_factory
    tracer: Optional[Tracer] = None


class NodeDownError(RuntimeError):
    """Raised when a transaction is initiated at a crashed node."""

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} is down")
        self.node_id = node_id


class ShardCluster:
    """A fully replicated SHARD deployment in one simulator."""

    def __init__(self, initial_state: State, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        if self.config.n_nodes < 1:
            raise ValueError("need at least one node")
        self.initial_state = initial_state
        self.sim = Simulator()
        self.streams = SeededStreams(self.config.seed)
        # note: Tracer defines __len__, so an empty tracer is falsy —
        # test identity, not truthiness.
        self.tracer = (
            self.config.tracer if self.config.tracer is not None
            else NULL_TRACER
        )
        self.network = Network(
            self.sim,
            delay=self.config.delay or FixedDelay(1.0),
            partitions=self.config.partitions
            or PartitionSchedule.always_connected(),
            loss_probability=self.config.loss_probability,
            rng=self.streams.stream("network"),
        )
        self.broadcast = ReliableBroadcast(
            self.sim,
            self.network,
            self.config.broadcast or BroadcastConfig(),
            rng=self.streams.stream("gossip"),
        )
        # digest rumors stand in for the full-set piggyback; causal
        # delivery gating (on each record's seen-set) is what preserves
        # the Section 3.3 transitivity guarantee under delta gossip.
        self.broadcast.depends_on = lambda key, item: item.seen_txids
        self.broadcast.on_event = self._trace
        self.ledger = ExternalLedger()
        self.sync = SyncManager(
            clock=self.sim,
            transport=self.network,
            broadcast=self.broadcast,
            apply=self.initiate_now,
        )
        self.agents: Dict[str, TokenAgent] = {}
        self.nodes: List[ShardNode] = []
        for node_id in range(self.config.n_nodes):
            node = ShardNode(
                node_id,
                initial_state,
                merge_factory=self.config.merge_factory,
                ledger=self.ledger,
            )
            node.replica.on_merge = self._make_merge_hook(node_id)
            self.nodes.append(node)
            self.broadcast.attach(
                node_id,
                self._make_deliver(node),
                register_transport=False,
                on_deliver_batch=self._make_deliver_batch(node),
            )
            self.network.register(node_id, self._make_dispatcher(node_id))
        self.broadcast.start_anti_entropy()
        self._next_txid = 0
        self.records: Dict[int, UpdateRecord] = {}
        self.rejected_submissions = 0
        self.broadcast.active_filter = lambda n: self.nodes[n].online

    # -- tracing ------------------------------------------------------------

    def _trace(self, kind: str, node: Optional[int] = None, **detail) -> None:
        """The single guarded path to the tracer: every event the cluster
        emits goes through here, so enabling/disabling is uniform."""
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, kind, node, **detail)

    def _make_merge_hook(
        self, node_id: int
    ) -> Callable[[MergeOutcome], None]:
        """Trace every merge the node's replica performs: tail fast-path
        hits and undo/redo repairs with their displacement."""

        def on_merge(outcome: MergeOutcome) -> None:
            if outcome.added > 1:
                self._trace(
                    "merge_batch", node_id,
                    count=outcome.added,
                    displacement=outcome.displacement,
                    replayed=outcome.replayed,
                )
            elif outcome.fastpath:
                self._trace("merge_fastpath", node_id)
            elif outcome.certified:
                self._trace(
                    "merge_certified", node_id,
                    displacement=outcome.displacement,
                    skipped=outcome.skipped,
                )
            else:
                self._trace(
                    "merge_undo", node_id,
                    displacement=outcome.displacement,
                    replayed=outcome.replayed,
                )

        return on_merge

    def _make_deliver(self, node: ShardNode) -> Callable[[object, object], None]:
        def deliver(key: object, item: object) -> None:
            assert isinstance(item, UpdateRecord)
            if node.receive(item):
                self._trace(
                    "deliver", node.node_id,
                    txid=item.txid, origin=item.origin,
                )

        return deliver

    def _make_deliver_batch(self, node: ShardNode) -> Callable[[tuple], None]:
        """Batched sibling of :meth:`_make_deliver`: one undo/redo cycle
        per gossip merge, but still one ``deliver`` trace per record so
        the exactly-once oracles keep working unchanged."""

        def deliver_batch(batch: tuple) -> None:
            records = []
            for _key, item in batch:
                assert isinstance(item, UpdateRecord)
                records.append(item)
            for item in node.receive_batch(records):
                self._trace(
                    "deliver", node.node_id,
                    txid=item.txid, origin=item.origin,
                )

        return deliver_batch

    def _make_dispatcher(self, node_id: int) -> Callable[[int, object], None]:
        """Multiplex broadcast and synchronization messages."""

        def dispatch(src: int, payload: object) -> None:
            if not self.nodes[node_id].online:
                return  # crashed nodes drop everything on the floor
            kind = payload[0]
            if kind == "items" or kind in GOSSIP_KINDS:
                self.broadcast.receive(node_id, payload, src=src)
            elif kind in (TOKEN_REQUEST, TOKEN_GRANT):
                self.agents[payload[1]].handle(node_id, src, payload)
            else:
                self.sync.handle(node_id, src, payload)

        return dispatch

    # -- submission ----------------------------------------------------------

    def initiate_now(self, node_id: int, transaction: Transaction) -> None:
        """Run a transaction's decision at ``node_id`` immediately (no
        scheduling): assign a txid, record externals, publish the update.

        Raises :class:`NodeDownError` if the node has crashed; callers
        modeling client behavior should catch it (``submit`` does, and
        counts the rejection)."""
        node = self.nodes[node_id]
        if not node.online:
            raise NodeDownError(node_id)
        txid = self._next_txid
        self._next_txid += 1
        record = node.initiate(txid, transaction, self.sim.now)
        self.records[txid] = record
        self._trace(
            "initiate", node_id,
            txid=txid, family=transaction.name,
            seen=len(record.seen_txids),
        )
        self.broadcast.publish(node_id, txid, record)

    def submit(
        self,
        node_id: int,
        transaction: Transaction,
        at: Optional[float] = None,
    ) -> None:
        """Schedule ``transaction`` to be initiated at ``node_id`` at
        simulated time ``at`` (default: now)."""
        def fire() -> None:
            try:
                self.initiate_now(node_id, transaction)
            except NodeDownError:
                self.rejected_submissions += 1

        self.sim.schedule_at(self.sim.now if at is None else at, fire)

    def submit_synchronized(
        self,
        node_id: int,
        transaction: Transaction,
        timeout: float = 10.0,
    ) -> None:
        """Mixed-mode operation (Sections 3.2, 6): run this transaction
        with a (near-)complete prefix by first pulling every node's known
        set; rejected if some node is unreachable within ``timeout``.
        See :mod:`repro.shard.sync`."""
        self.sync.submit(node_id, transaction, timeout=timeout)

    def schedule_crash(self, node_id: int, start: float, end: float) -> None:
        """Fail-stop the node during [start, end): it neither initiates
        nor receives, then recovers with its log intact and catches up
        through anti-entropy."""
        if end <= start:
            raise ValueError("crash interval must have positive length")
        node = self.nodes[node_id]

        def crash() -> None:
            node.online = False
            self._trace("crash", node_id)

        def recover() -> None:
            node.online = True
            self._trace("recover", node_id)

        self.sim.schedule_at(start, crash)
        self.sim.schedule_at(end, recover)

    def create_agent(
        self,
        name: str = "agent",
        home: int = 0,
        policy: str = "block",
        timeout: float = 10.0,
    ) -> TokenAgent:
        """Create a token-based centralized agent for a transaction
        group (see :mod:`repro.shard.agent`)."""
        if name in self.agents:
            raise ValueError(f"agent {name!r} already exists")
        agent = TokenAgent(
            self, name=name, home=home, policy=policy, timeout=timeout
        )
        self.agents[name] = agent
        return agent

    # -- running ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def quiesce(self, max_rounds: int = 10) -> None:
        """Drain in-flight work, then exchange logs directly until every
        node knows every update (models post-healing anti-entropy)."""
        self.broadcast.stop_anti_entropy()
        self.sim.run()
        rounds = 0
        while not self.broadcast.converged():
            self.broadcast.exchange_all()
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("cluster failed to converge")

    # -- invariants -----------------------------------------------------------------

    def mutually_consistent(self) -> bool:
        """Do all nodes with equal logs hold equal states?  After
        :meth:`quiesce`, all logs are equal, so all states must be.

        Nodes are grouped by log content and compared pairwise within
        each group — comparing only against node 0 would let two
        divergent nodes slip through whenever node 0's log differs from
        both of theirs."""
        groups: Dict[frozenset, State] = {}
        for node in self.nodes:
            reference = groups.setdefault(node.known_txids, node.state)
            if node.state != reference:
                return False
        return True

    def converged(self) -> bool:
        return self.broadcast.converged()

    @property
    def states(self) -> Tuple[State, ...]:
        return tuple(node.state for node in self.nodes)

    # -- history ------------------------------------------------------------------------

    def extract_execution(self, verify: bool = True) -> TimedExecution:
        """The formal execution of this run (see :mod:`repro.shard.history`)."""
        return extract_execution(
            self.initial_state, self.records.values(), verify=verify
        )
