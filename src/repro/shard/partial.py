"""Partial replication (the Section 6 generalization).

"The inessential full replication assumption needs to be removed.  Even
with only partial replication, it should be possible to continue to
maintain the correctness conditions we describe in this paper, by
judicious assignment of data and transactions to nodes, (i.e. in such a
way that each transaction will have copies of all the data it
requires)."

This module implements exactly that discipline:

* the database is partitioned into named **objects** (e.g. one per
  flight), each with its own initial substate and its own timestamp-
  ordered log;
* a **placement** assigns each node a subset of objects; a transaction
  touches exactly one object and may only be initiated at a node holding
  it ("each transaction has copies of all the data it requires");
* updates are disseminated only to the object's holders — flooding to
  holders, and anti-entropy between *sharing* peers — so bandwidth
  scales with replication degree, not cluster size;
* in the default ``mode="digest"``, anti-entropy runs the gossip
  subsystem's push–pull delta protocol over per-object digests (cells
  are tagged with the object key as their *group*, and each exchange is
  restricted to the objects both peers hold), floods are single-record
  rumors carrying a shared-groups digest, and received records are
  causally gated on their per-object seen-sets; ``mode="full"`` keeps
  the legacy full-log exchange for A/B runs;
* per object, everything reduces to the fully-replicated theory: the
  extracted per-object executions satisfy the prefix subsequence
  condition, and all of the paper's per-constraint results apply
  unchanged (checked by the partial-replication bench).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from ..core.execution import TimedExecution
from ..core.state import State
from ..core.transaction import Transaction
from ..gossip import (
    GOSSIP_KINDS,
    CausalBuffer,
    DeltaStats,
    DigestIndex,
    ExchangeEngine,
    PeerScheduler,
    RangeDigest,
    differing_cells,
)
from ..network.link import DelayModel, FixedDelay
from ..network.network import Network
from ..network.partition import PartitionSchedule
from ..replica import LamportClock, Replica, UpdateRecord
from ..sim.engine import Simulator
from ..sim.metrics import WireStats
from ..sim.rng import SeededStreams
from .external import ExternalLedger
from .history import extract_execution
from .undo_redo import MergeEngineFactory, suffix_factory

ObjectKey = str


@dataclass(frozen=True)
class KeyedRecord:
    """An update record tagged with the object it belongs to."""

    key: ObjectKey
    record: UpdateRecord


@dataclass
class PartialConfig:
    #: node id -> the object keys replicated there.
    placement: Dict[int, FrozenSet[ObjectKey]]
    seed: int = 0
    delay: Optional[DelayModel] = None
    partitions: Optional[PartitionSchedule] = None
    loss_probability: float = 0.0
    anti_entropy_interval: float = 5.0
    flood: bool = True
    #: "digest" (delta reconciliation over per-object range digests) or
    #: "full" (legacy full-log exchange, kept for A/B comparison).
    mode: str = "digest"
    bucket_width: int = 32
    ack_timeout: float = 4.0
    max_backoff_factor: float = 8.0
    repair_cooldown: float = 2.0
    merge_factory: MergeEngineFactory = suffix_factory
    #: optional summary function (Section 6: "data ... present in summary
    #: form"): substate -> an opaque summary value.  When set, every
    #: message additionally carries the sender's summaries of the objects
    #: it holds, and receivers cache them for objects they do NOT hold
    #: (read via PartialNode.summary / PartialCluster.summaries).
    summarize: Optional[Callable[[State], object]] = None


@dataclass
class PartialStats:
    flood_messages: int = 0
    anti_entropy_messages: int = 0
    items_carried: int = 0
    delta: DeltaStats = field(default_factory=DeltaStats)
    wire: WireStats = field(default_factory=WireStats)


class PartialNode:
    """A node holding replicas of a subset of the objects."""

    def __init__(
        self,
        node_id: int,
        keys: FrozenSet[ObjectKey],
        initial_substates: Dict[ObjectKey, State],
        merge_factory: MergeEngineFactory,
        ledger: ExternalLedger,
        bucket_width: int = 32,
    ):
        self.node_id = node_id
        self.keys = keys
        self.clock = LamportClock(node_id)
        #: one replica (canonical log + merge view) per object held.
        self.replicas: Dict[ObjectKey, Replica] = {
            k: Replica(initial_substates[k], engine_factory=merge_factory)
            for k in keys
        }
        self.ledger = ledger
        #: digest over every held object's log; cells are grouped by
        #: object key so exchanges can be restricted to shared objects.
        self.index = DigestIndex(bucket_width)
        #: (object key, txid) -> record, for delta-protocol lookups.
        self.records_held: Dict[Tuple[ObjectKey, int], UpdateRecord] = {}
        #: stale summaries of objects this node does NOT hold:
        #: key -> (as-of simulated time, summary value).
        self.summaries: Dict[ObjectKey, Tuple[float, object]] = {}

    @property
    def logs(self):
        """The canonical per-object logs (view over the replicas)."""
        return {k: replica.log for k, replica in self.replicas.items()}

    @property
    def merges(self):
        """The per-object merge views (stats live here)."""
        return {k: replica.engine for k, replica in self.replicas.items()}

    def substate(self, key: ObjectKey) -> State:
        return self.replicas[key].state

    def known_txids(self, key: ObjectKey) -> FrozenSet[int]:
        return self.replicas[key].txids

    def initiate(
        self, txid: int, key: ObjectKey, transaction: Transaction, now: float
    ) -> KeyedRecord:
        if key not in self.keys:
            raise KeyError(
                f"node {self.node_id} does not hold object {key!r}"
            )
        decision = transaction.decide(self.substate(key))
        self.ledger.record(
            now, self.node_id, txid, tuple(decision.external_actions)
        )
        record = UpdateRecord(
            ts=self.clock.issue(),
            txid=txid,
            transaction=transaction,
            update=decision.update,
            origin=self.node_id,
            real_time=now,
            seen_txids=self.known_txids(key),
        )
        self._insert(key, record)
        return KeyedRecord(key, record)

    def receive(self, keyed: KeyedRecord) -> bool:
        """Merge a record for an object this node holds; drop others."""
        self.clock.observe(keyed.record.ts)
        if keyed.key not in self.keys:
            return False
        return self._insert(keyed.key, keyed.record)

    def _insert(self, key: ObjectKey, record: UpdateRecord) -> bool:
        accepted = self.replicas[key].ingest(record) is not None
        if accepted:
            self.index.add(
                record.txid,
                (record.ts.counter, record.ts.node_id),
                group=key,
            )
            self.records_held[(key, record.txid)] = record
        return accepted

    def accept_summary(
        self, key: ObjectKey, as_of: float, value: object
    ) -> None:
        """Cache a peer's summary of an object this node does not hold
        (newer as-of times win)."""
        if key in self.keys:
            return
        current = self.summaries.get(key)
        if current is None or as_of >= current[0]:
            self.summaries[key] = (as_of, value)

    def summary(self, key: ObjectKey) -> Optional[object]:
        """The cached (possibly stale) summary of a foreign object."""
        entry = self.summaries.get(key)
        return entry[1] if entry else None


class _PartialStore:
    """Store adapter driving the gossip engine over per-object groups.

    Every digest (and diff) is restricted to the objects *both* peers
    hold — non-shared objects are invisible to the exchange, which is
    how "bandwidth scales with replication degree" survives the move to
    delta gossip.  Summaries (Section 6) ride as the protocol's
    ``extra`` payloads on SYN/ACK/rumor messages.
    """

    def __init__(self, cluster: "PartialCluster"):
        self.cluster = cluster

    def _shared(self, node: int, peer: int) -> FrozenSet[ObjectKey]:
        nodes = self.cluster.nodes
        if peer not in nodes:
            return frozenset()
        return nodes[node].keys & nodes[peer].keys

    def digest_for(self, node: int, peer: int) -> RangeDigest:
        return self.cluster.nodes[node].index.digest(
            groups=self._shared(node, peer)
        )

    def diff(self, node: int, remote: RangeDigest, peer: int) -> Tuple:
        return differing_cells(
            self.cluster.nodes[node].index,
            remote,
            groups=self._shared(node, peer),
        )

    def keys_in(self, node: int, cell: Tuple):
        return self.cluster.nodes[node].index.keys_in(cell)

    def has(self, node: int, group: ObjectKey, key: int) -> bool:
        pnode = self.cluster.nodes[node]
        if group not in pnode.keys:
            return False
        if (group, key) in pnode.records_held:
            return True
        return (group, key) in self.cluster._buffers[node]

    def item_for(self, node: int, group: ObjectKey, key: int) -> UpdateRecord:
        pnode = self.cluster.nodes[node]
        record = pnode.records_held.get((group, key))
        if record is not None:
            return record
        return self.cluster._buffers[node].peek((group, key))

    def merge(self, node: int, wire_items) -> None:
        pnode = self.cluster.nodes[node]
        buffer = self.cluster._buffers[node]
        for group, txid, record in wire_items:
            pnode.clock.observe(record.ts)
            if group in pnode.keys:
                buffer.offer((group, txid), record)

    def extra_for(self, node: int, peer: int):
        return self.cluster._summaries_from(node) or None

    def accept_extra(self, node: int, src: int, extra) -> None:
        if not extra:
            return
        pnode = self.cluster.nodes[node]
        for key, as_of, value in extra:
            pnode.accept_summary(key, as_of, value)


class PartialCluster:
    """A partially replicated SHARD deployment."""

    def __init__(
        self,
        initial_substates: Dict[ObjectKey, State],
        config: PartialConfig,
    ):
        for node_id, keys in config.placement.items():
            missing = keys - set(initial_substates)
            if missing:
                raise ValueError(
                    f"node {node_id} placed for unknown objects {missing}"
                )
        self.initial_substates = dict(initial_substates)
        self.config = config
        self.sim = Simulator()
        self.streams = SeededStreams(config.seed)
        self.network = Network(
            self.sim,
            delay=config.delay or FixedDelay(1.0),
            partitions=config.partitions or PartitionSchedule.always_connected(),
            loss_probability=config.loss_probability,
            rng=self.streams.stream("network"),
        )
        self.ledger = ExternalLedger()
        self.stats = PartialStats()
        if config.mode not in ("digest", "full"):
            raise ValueError(f"unknown gossip mode {config.mode!r}")
        self.nodes: Dict[int, PartialNode] = {}
        self._buffers: Dict[int, CausalBuffer] = {}
        for node_id, keys in sorted(config.placement.items()):
            node = PartialNode(
                node_id, frozenset(keys), self.initial_substates,
                config.merge_factory, self.ledger,
                bucket_width=config.bucket_width,
            )
            self.nodes[node_id] = node
            self.network.register(node_id, self._make_handler(node))
            # gate deliveries on the record's per-object seen-set so each
            # replica's log stays causally closed under delta gossip.
            self._buffers[node_id] = CausalBuffer(
                depends_on=lambda gk, rec: tuple(
                    (gk[0], dep) for dep in rec.seen_txids
                ),
                deliver=lambda gk, rec, n=node: n._insert(gk[0], rec),
                is_delivered=lambda gk, n=node: gk in n.records_held,
            )
        self._next_txid = 0
        self.records: Dict[int, KeyedRecord] = {}
        self._gossip_rng = self.streams.stream("gossip")
        self.scheduler = PeerScheduler(
            self._gossip_rng,
            base_backoff=config.anti_entropy_interval,
            max_backoff_factor=config.max_backoff_factor,
        )
        self.engine = ExchangeEngine(
            self.sim,
            lambda src, dst, payload: self.network.send(src, dst, payload),
            _PartialStore(self),
            self.scheduler,
            self.stats.delta,
            self.stats.wire,
            ack_timeout=config.ack_timeout,
            repair_cooldown=config.repair_cooldown,
            count_records=self._count_records,
        )
        self._anti_entropy_stopped = False
        self._start_anti_entropy()

    def _count_records(self, n: int) -> None:
        self.stats.items_carried += n

    # -- topology helpers ---------------------------------------------------

    def holders(self, key: ObjectKey) -> Tuple[int, ...]:
        return tuple(
            node_id
            for node_id, node in sorted(self.nodes.items())
            if key in node.keys
        )

    def sharing_peers(self, node_id: int) -> Tuple[int, ...]:
        mine = self.nodes[node_id].keys
        return tuple(
            other
            for other, node in sorted(self.nodes.items())
            if other != node_id and node.keys & mine
        )

    # -- dissemination --------------------------------------------------------

    def _make_handler(self, node: PartialNode) -> Callable[[int, object], None]:
        def handler(src: int, payload: object) -> None:
            kind = payload[0]
            if kind in GOSSIP_KINDS:
                self.engine.handle(node.node_id, src, payload)
                return
            _, items, summaries = payload
            assert kind == "keyed_items"
            for keyed in items:
                node.receive(keyed)
            for key, as_of, value in summaries:
                node.accept_summary(key, as_of, value)

        return handler

    def _summaries_from(self, node_id: int) -> Tuple:
        """Summaries of every object the sender holds, stamped now."""
        if self.config.summarize is None:
            return ()
        node = self.nodes[node_id]
        return tuple(
            (key, self.sim.now, self.config.summarize(node.substate(key)))
            for key in sorted(node.keys)
        )

    def _start_anti_entropy(self) -> None:
        interval = self.config.anti_entropy_interval
        for i, node_id in enumerate(sorted(self.nodes)):
            offset = interval * (i + 1) / (len(self.nodes) + 1)
            self.sim.schedule(offset, self._make_gossip_tick(node_id))

    def _make_gossip_tick(self, node_id: int) -> Callable[[], None]:
        def tick() -> None:
            if self._anti_entropy_stopped:
                return
            self._gossip_once(node_id)
            self.sim.schedule(
                self.config.anti_entropy_interval,
                self._make_gossip_tick(node_id),
            )

        return tick

    def _gossip_once(self, node_id: int) -> None:
        if self.config.summarize is not None:
            # with summaries on, gossip reaches every peer (summaries are
            # the cross-placement information channel).
            peers = tuple(n for n in sorted(self.nodes) if n != node_id)
        else:
            peers = self.sharing_peers(node_id)
        if not peers:
            return
        if self.config.mode == "digest":
            for peer in self.scheduler.pick(node_id, peers, self.sim.now):
                self.stats.anti_entropy_messages += 1
                self.engine.initiate(node_id, peer)
            return
        peer = self._gossip_rng.choice(peers)
        shared = self.nodes[node_id].keys & self.nodes[peer].keys
        items = self._items_for(node_id, shared)
        summaries = self._summaries_from(node_id)
        if items or summaries:
            self.stats.anti_entropy_messages += 1
            self.stats.items_carried += len(items)
            self.stats.wire.message(
                records=len(items), summaries=len(summaries)
            )
            self.network.send(
                node_id, peer, ("keyed_items", items, summaries)
            )

    def _items_for(
        self, node_id: int, keys: FrozenSet[ObjectKey]
    ) -> Tuple[KeyedRecord, ...]:
        node = self.nodes[node_id]
        return tuple(
            KeyedRecord(key, record)
            for key in sorted(keys)
            for record in node.replicas[key].log
        )

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        node_id: int,
        key: ObjectKey,
        transaction: Transaction,
        at: Optional[float] = None,
    ) -> None:
        """Initiate at a holder of ``key`` (raises if the node lacks it)."""
        if key not in self.nodes[node_id].keys:
            raise KeyError(f"node {node_id} does not hold {key!r}")

        def fire() -> None:
            txid = self._next_txid
            self._next_txid += 1
            keyed = self.nodes[node_id].initiate(
                txid, key, transaction, self.sim.now
            )
            self.records[txid] = keyed
            if self.config.flood and self.config.mode == "digest":
                # rumor mongering: the new record plus a digest of the
                # shared objects (digest-mismatch triggers a repair
                # pull); causal gating at receivers stands in for the
                # full-log piggyback's per-object transitivity.
                record = keyed.record
                for holder in self.holders(key):
                    if holder != node_id:
                        self.stats.flood_messages += 1
                        self.engine.send_rumor(
                            node_id,
                            holder,
                            ((key, record.txid, record),),
                            self.nodes[node_id].index.digest(
                                groups=self.nodes[node_id].keys
                                & self.nodes[holder].keys
                            ),
                            extra=self._summaries_from(node_id) or None,
                        )
            elif self.config.flood:
                # piggyback the node's full log for the object: the
                # transitivity trick of Section 3.3, per object.
                items = self._items_for(node_id, frozenset({key}))
                summaries = self._summaries_from(node_id)
                for holder in self.holders(key):
                    if holder != node_id:
                        self.stats.flood_messages += 1
                        self.stats.items_carried += len(items)
                        self.stats.wire.message(
                            records=len(items), summaries=len(summaries)
                        )
                        self.network.send(
                            node_id, holder,
                            ("keyed_items", items, summaries),
                        )

        self.sim.schedule_at(self.sim.now if at is None else at, fire)

    def route_submit(
        self,
        key: ObjectKey,
        transaction: Transaction,
        rng: random.Random,
        at: Optional[float] = None,
    ) -> int:
        """Submit at a uniformly chosen holder of ``key``; returns it."""
        holders = self.holders(key)
        if not holders:
            raise KeyError(f"no node holds object {key!r}")
        node_id = rng.choice(holders)
        self.submit(node_id, key, transaction, at=at)
        return node_id

    # -- running / convergence -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def converged(self) -> bool:
        """Every object's holders agree on its log."""
        for key in self.initial_substates:
            holders = self.holders(key)
            if not holders:
                continue
            reference = self.nodes[holders[0]].known_txids(key)
            for other in holders[1:]:
                if self.nodes[other].known_txids(key) != reference:
                    return False
        return True

    def quiesce(self, max_rounds: int = 10) -> None:
        self._anti_entropy_stopped = True
        self.sim.run()
        for _ in range(max_rounds):
            if self.converged():
                return
            for node_id in sorted(self.nodes):
                for peer in self.sharing_peers(node_id):
                    shared = self.nodes[node_id].keys & self.nodes[peer].keys
                    for keyed in self._items_for(node_id, shared):
                        self.nodes[peer].receive(keyed)
        if not self.converged():
            raise RuntimeError("partial cluster failed to converge")

    def mutually_consistent(self) -> bool:
        """Holders of each object hold identical substates when their
        logs agree — checked pairwise by grouping holders on log
        content, not just against the first holder."""
        for key in self.initial_substates:
            groups: Dict[FrozenSet[int], State] = {}
            for holder in self.holders(key):
                node = self.nodes[holder]
                txids = node.known_txids(key)
                reference = groups.setdefault(txids, node.substate(key))
                if node.substate(key) != reference:
                    return False
        return True

    def summary_view(self, node_id: int) -> Dict[ObjectKey, object]:
        """The node's view of every object: exact substate summaries for
        objects it holds, cached (possibly stale) summaries for the rest
        (None when nothing has been heard yet)."""
        if self.config.summarize is None:
            raise RuntimeError("configure PartialConfig.summarize first")
        node = self.nodes[node_id]
        view: Dict[ObjectKey, object] = {}
        for key in self.initial_substates:
            if key in node.keys:
                view[key] = self.config.summarize(node.substate(key))
            else:
                view[key] = node.summary(key)
        return view

    # -- history -------------------------------------------------------------------------

    def extract_execution(
        self, key: ObjectKey, verify: bool = True
    ) -> TimedExecution:
        """The formal execution of one object's transactions.

        Per object, the run is exactly a fully-replicated SHARD run over
        the object's holders, so the single-database theory applies."""
        records = [
            keyed.record
            for keyed in self.records.values()
            if keyed.key == key
        ]
        return extract_execution(
            self.initial_substates[key], records, verify=verify
        )
