"""Undo/redo merge engines (Sections 1.2, 3.3; [BK], [SKS]).

A SHARD node's database copy must always equal the result of applying its
log's updates in timestamp order to the initial state.  When a record
arrives out of order, the node conceptually *undoes* every later update
and *redoes* them on top of the newcomer.  Three engines implement this
contract with different cost profiles:

* :class:`NaiveMerge` — recompute everything from the initial state on
  every insertion (the specification; O(n) updates per insert);
* :class:`SuffixMerge` — keep a snapshot after every log position and
  recompute only the suffix at the insertion point (the paper's undo/redo
  optimization [BK]: work proportional to how far out of order the
  message was);
* :class:`CheckpointMerge` — snapshot every ``interval`` positions,
  trading redo work against snapshot storage ([SKS]'s storage-structure
  angle).

All engines count the updates they apply, which the undo/redo benchmark
(E11) reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.state import State
from ..core.update import Update


@dataclass
class MergeStats:
    inserts: int = 0
    updates_applied: int = 0
    snapshots_held: int = 0


class MergeEngine(abc.ABC):
    """Maintains the materialized state of a timestamp-ordered log."""

    def __init__(self, initial_state: State):
        self.initial_state = initial_state
        self.stats = MergeStats()
        self._updates: List[Update] = []

    @property
    def log_length(self) -> int:
        return len(self._updates)

    @abc.abstractmethod
    def insert(self, position: int, update: Update) -> None:
        """Insert ``update`` at ``position`` and restore the invariant
        state == fold(updates, initial_state)."""

    @property
    @abc.abstractmethod
    def state(self) -> State:
        """The materialized state of the full log."""

    def _insert_update(self, position: int, update: Update) -> None:
        if not 0 <= position <= len(self._updates):
            raise IndexError(f"insert position {position} out of range")
        self._updates.insert(position, update)
        self.stats.inserts += 1


class NaiveMerge(MergeEngine):
    """Recompute the whole log on every insertion."""

    def __init__(self, initial_state: State):
        super().__init__(initial_state)
        self._state = initial_state

    def insert(self, position: int, update: Update) -> None:
        self._insert_update(position, update)
        state = self.initial_state
        for u in self._updates:
            state = u.apply(state)
            self.stats.updates_applied += 1
        self._state = state

    @property
    def state(self) -> State:
        return self._state


class SuffixMerge(MergeEngine):
    """Snapshot after every position; redo only the tail past the insert."""

    def __init__(self, initial_state: State):
        super().__init__(initial_state)
        #: _snapshots[i] is the state after the first i updates.
        self._snapshots: List[State] = [initial_state]

    def insert(self, position: int, update: Update) -> None:
        self._insert_update(position, update)
        del self._snapshots[position + 1:]
        state = self._snapshots[position]
        for u in self._updates[position:]:
            state = u.apply(state)
            self.stats.updates_applied += 1
            self._snapshots.append(state)
        self.stats.snapshots_held = max(
            self.stats.snapshots_held, len(self._snapshots)
        )

    @property
    def state(self) -> State:
        return self._snapshots[-1]


class CheckpointMerge(MergeEngine):
    """Snapshot every ``interval`` positions; redo from the nearest
    checkpoint at or before the insertion point."""

    def __init__(self, initial_state: State, interval: int = 16):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        super().__init__(initial_state)
        self.interval = interval
        #: checkpoint i holds the state after the first i*interval updates.
        self._checkpoints: List[State] = [initial_state]
        self._state = initial_state

    def insert(self, position: int, update: Update) -> None:
        self._insert_update(position, update)
        base_index = position // self.interval
        del self._checkpoints[base_index + 1:]
        state = self._checkpoints[base_index]
        start = base_index * self.interval
        for offset, u in enumerate(self._updates[start:], start=start):
            state = u.apply(state)
            self.stats.updates_applied += 1
            if (offset + 1) % self.interval == 0:
                self._checkpoints.append(state)
        self._state = state
        self.stats.snapshots_held = max(
            self.stats.snapshots_held, len(self._checkpoints)
        )

    @property
    def state(self) -> State:
        return self._state


MergeEngineFactory = Callable[[State], MergeEngine]


def naive_factory(initial_state: State) -> MergeEngine:
    return NaiveMerge(initial_state)


def suffix_factory(initial_state: State) -> MergeEngine:
    return SuffixMerge(initial_state)


def checkpoint_factory(interval: int = 16) -> MergeEngineFactory:
    def factory(initial_state: State) -> MergeEngine:
        return CheckpointMerge(initial_state, interval)

    return factory
