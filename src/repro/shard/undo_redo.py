"""Undo/redo merge engines (Sections 1.2, 3.3; [BK], [SKS]).

Compatibility layer over :mod:`repro.replica`.  The engines here are the
seed API — ``NaiveMerge``, ``SuffixMerge``, ``CheckpointMerge`` and the
three factories — now implemented as thin configurations of the replica
subsystem's policy-driven :class:`~repro.replica.engine.MergeView`:

* :class:`NaiveMerge` — no snapshots, no fast path: recompute everything
  from the initial state on every insertion (the specification; O(n)
  updates per insert);
* :class:`SuffixMerge` — the every-position policy with the tail fast
  path (the paper's undo/redo optimization [BK]: work proportional to
  how far out of order the message was; memory proportional to the log);
* :class:`CheckpointMerge` — the fixed-interval policy without the fast
  path, reproducing the seed engine's exact cost profile ([SKS]'s
  storage-structure angle).

New code should prefer the replica layer directly
(:func:`repro.replica.policy_engine_factory` with a bounded policy such
as :class:`~repro.replica.policy.TailWindowPolicy` or
:class:`~repro.replica.policy.AdaptiveWindowPolicy`); these classes
exist so existing imports and cost assertions keep working unchanged.
"""

from __future__ import annotations

from typing import Callable

from ..core.state import State
from ..replica.engine import MergeStats, MergeView
from ..replica.policy import (
    EveryPositionPolicy,
    FixedIntervalPolicy,
    InitialOnlyPolicy,
)

__all__ = [
    "CheckpointMerge",
    "MergeEngine",
    "MergeEngineFactory",
    "MergeStats",
    "NaiveMerge",
    "SuffixMerge",
    "checkpoint_factory",
    "naive_factory",
    "suffix_factory",
]


class MergeEngine(MergeView):
    """Maintains the materialized state of a timestamp-ordered log.

    The seed base class; today an alias for the replica subsystem's
    :class:`~repro.replica.engine.MergeView` (standalone mode keeps the
    seed's ``insert(position, update)`` contract, attached mode serves
    :class:`~repro.replica.replica.Replica`)."""


class NaiveMerge(MergeEngine):
    """Recompute the whole log on every insertion."""

    def __init__(self, initial_state: State):
        super().__init__(
            initial_state, policy=InitialOnlyPolicy(), fast_path=False
        )


class SuffixMerge(MergeEngine):
    """Snapshot after every position; redo only the tail past the insert."""

    def __init__(self, initial_state: State):
        super().__init__(initial_state, policy=EveryPositionPolicy())


class CheckpointMerge(MergeEngine):
    """Snapshot every ``interval`` positions; redo from the nearest
    checkpoint at or before the insertion point."""

    def __init__(self, initial_state: State, interval: int = 16):
        super().__init__(
            initial_state,
            policy=FixedIntervalPolicy(interval),
            fast_path=False,
        )
        self.interval = interval


MergeEngineFactory = Callable[[State], MergeEngine]


def naive_factory(initial_state: State) -> MergeEngine:
    return NaiveMerge(initial_state)


def suffix_factory(initial_state: State) -> MergeEngine:
    return SuffixMerge(initial_state)


def checkpoint_factory(interval: int = 16) -> MergeEngineFactory:
    def factory(initial_state: State) -> MergeEngine:
        return CheckpointMerge(initial_state, interval)

    return factory
