"""Synchronized (near-complete-prefix) transactions — mixed-mode operation.

Section 3.2 suggests that some critical transactions — the canonical
example is an *audit* in a banking system — should run with a complete
prefix, and Section 6 asks for a system "in which certain critical
transactions run serializably, while the others run in a highly
available manner".  This module implements that mixed mode on top of the
cluster:

* a synchronized submission first *pulls*: the origin broadcasts a
  ``sync_pull`` and waits for every other node to push what the origin
  is missing;
* when all pushes arrive, the origin merges them and only then runs the
  decision — its prefix now contains every transaction any node had
  issued by its push time;
* if some node is unreachable (partition) the pull times out and the
  transaction is **rejected** — exactly the availability price the paper
  predicts for serializable operation.

Under the digest gossip mode the pull is delta-shaped: the ``sync_pull``
carries the origin's :class:`~repro.gossip.digest.RangeDigest`, and each
peer pushes only the records it holds in timestamp ranges where the
digests disagree — the origin's round-trip count (and hence latency) is
unchanged, but the pushes no longer ship the peers' full histories.
Completeness is preserved because a record the origin lacks necessarily
makes its cell's (count, fingerprint) differ from the origin's.  In
``mode="full"`` peers push their entire known sets (the legacy A/B
behavior).

The guarantee is honest rather than absolute: transactions initiated
concurrently with the pull can still land before the synchronized one in
timestamp order, so the achieved deficit is bounded by in-flight
concurrency (measured in the bench) instead of being identically zero.
Compare [S]'s probabilistic concurrency control, which the paper cites
for the same purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..core.transaction import Transaction
from ..ports import Clock, Transport

#: runs a transaction's decision at a node, now (the host's submission
#: path — ``ShardCluster.initiate_now`` in the simulator, the node
#: server's local initiate in the runtime).
ApplyFn = Callable[[int, Transaction], None]

#: message kinds used by the protocol (multiplexed on the cluster's
#: transport next to the broadcast's gossip payloads).
SYNC_PULL = "sync_pull"
SYNC_PUSH = "sync_push"


@dataclass
class SyncStats:
    requested: int = 0
    served: int = 0
    rejected: int = 0
    #: pull latencies of served synchronized transactions.
    latencies: List[float] = field(default_factory=list)
    #: records carried by sync_push replies (delta-sized in digest mode).
    pushed_records: int = 0

    @property
    def availability(self) -> float:
        return self.served / self.requested if self.requested else 1.0


@dataclass
class _PendingSync:
    origin: int
    transaction: Transaction
    started_at: float
    awaiting: set
    timeout_handle: object


class SyncManager:
    """Drives the pull protocol.

    Owned by a :class:`~repro.shard.cluster.ShardCluster` in the
    simulator and by a :class:`~repro.runtime.node.NodeServer` in the
    real runtime — both hand it the same four ports: a clock for
    timeouts, a transport for the pull/push messages, the gossip
    service whose digests shape the deltas, and the host's submission
    path for the finally-complete decision.
    """

    def __init__(
        self,
        clock: Clock,
        transport: Transport,
        broadcast,
        apply: ApplyFn,
    ) -> None:
        self.clock = clock
        self.transport = transport
        self.broadcast = broadcast
        self.apply = apply
        self.stats = SyncStats()
        self._pending: Dict[int, _PendingSync] = {}
        self._next_id = 0

    def _members(self) -> Tuple[int, ...]:
        return self.broadcast._targets()

    @property
    def pending_count(self) -> int:
        """Open pulls (leak check: must drain to 0 after every outcome)."""
        return len(self._pending)

    # -- submission ------------------------------------------------------

    def submit(
        self,
        node_id: int,
        transaction: Transaction,
        timeout: float = 10.0,
    ) -> None:
        """Schedule a synchronized submission now (see module docstring)."""

        def fire() -> None:
            self.stats.requested += 1
            sync_id = self._next_id
            self._next_id += 1
            others = [n for n in self._members() if n != node_id]
            if not others:
                # single node: trivially complete.
                self.apply(node_id, transaction)
                self.stats.served += 1
                self.stats.latencies.append(0.0)
                return
            handle = self.clock.schedule(
                timeout, lambda: self._on_timeout(sync_id)
            )
            self._pending[sync_id] = _PendingSync(
                origin=node_id,
                transaction=transaction,
                started_at=self.clock.now,
                awaiting=set(others),
                timeout_handle=handle,
            )
            digest = (
                self.broadcast.digest(node_id)
                if self.broadcast.config.mode == "digest"
                else None
            )
            for other in others:
                self.broadcast.stats.wire.message(
                    cells=digest.n_cells if digest is not None else 0
                )
                self.transport.send(
                    node_id, other, (SYNC_PULL, sync_id, node_id, digest)
                )

        self.clock.schedule(0.0, fire)

    # -- message handling ---------------------------------------------------

    def handle(self, node_id: int, src: int, payload: Tuple) -> None:
        kind = payload[0]
        if kind == SYNC_PULL:
            _, sync_id, origin, digest = payload
            broadcast = self.broadcast
            if digest is not None:
                # delta push: only records in ranges where the origin's
                # digest disagrees with ours.
                items = broadcast.delta_records(node_id, digest)
            else:
                items = broadcast.known_items(node_id)
            self.stats.pushed_records += len(items)
            broadcast.stats.wire.message(records=len(items))
            self.transport.send(
                node_id, origin, (SYNC_PUSH, sync_id, node_id, items)
            )
        elif kind == SYNC_PUSH:
            _, sync_id, pusher, items = payload
            pending = self._pending.get(sync_id)
            if pending is None:
                return
            self.broadcast.merge_items(pending.origin, items)
            pending.awaiting.discard(pusher)
            if not pending.awaiting:
                self._complete(sync_id)

    # -- outcomes --------------------------------------------------------------

    def _finish(self, sync_id: int) -> "_PendingSync | None":
        """Single exit path: drop the entry and cancel its timer, so no
        completed pull can leak a pending record or a live handle."""
        pending = self._pending.pop(sync_id, None)
        if pending is not None:
            pending.timeout_handle.cancel()
        return pending

    def _complete(self, sync_id: int) -> None:
        pending = self._finish(sync_id)
        if pending is None:
            return
        self.apply(pending.origin, pending.transaction)
        self.stats.served += 1
        self.stats.latencies.append(
            self.clock.now - pending.started_at
        )

    def _on_timeout(self, sync_id: int) -> None:
        if self._finish(sync_id) is None:
            return
        self.stats.rejected += 1
