"""A SHARD node: a full replica processing transactions locally.

Each node's storage is a :class:`repro.replica.Replica`: the canonical
timestamp-ordered log plus a merge view materializing its fold.
Initiating a transaction runs the decision part *once*, against the
node's current (possibly stale) state; the resulting update is
timestamped, applied locally (an in-order tail append — the fast path)
and handed to the broadcast layer.  Remote updates are merged wherever
their timestamp lands, with undo/redo restoring the
everything-in-order invariant — there is no other inter-node concurrency
control, exactly as Section 1.2 describes.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..core.state import State
from ..core.transaction import Transaction
from ..replica import LamportClock, Replica, UpdateRecord
from .external import ExternalLedger
from .undo_redo import MergeEngineFactory, suffix_factory


class ShardNode:
    """One replica of the database."""

    def __init__(
        self,
        node_id: int,
        initial_state: State,
        merge_factory: MergeEngineFactory = suffix_factory,
        ledger: Optional[ExternalLedger] = None,
    ):
        self.node_id = node_id
        self.clock = LamportClock(node_id)
        self.replica = Replica(initial_state, engine_factory=merge_factory)
        self.ledger = ledger if ledger is not None else ExternalLedger()
        self.transactions_initiated = 0
        #: crash-failure flag: an offline node neither initiates nor
        #: receives; it recovers with its log intact (fail-stop model).
        self.online = True

    @property
    def log(self):
        """The node's canonical timestamp-ordered log."""
        return self.replica.log

    @property
    def merge(self):
        """The merge view materializing the log (stats live here)."""
        return self.replica.engine

    @property
    def state(self) -> State:
        """The node's current database copy (its log in timestamp order)."""
        return self.replica.state

    @property
    def known_txids(self) -> FrozenSet[int]:
        return self.replica.txids

    def initiate(
        self,
        txid: int,
        transaction: Transaction,
        now: float,
    ) -> UpdateRecord:
        """Run a transaction's decision part here and now.

        Performs the external actions (records them on the ledger),
        timestamps and locally applies the update, and returns the record
        for the broadcast layer to disseminate.
        """
        seen = self.known_txids
        decision = transaction.decide(self.state)
        self.ledger.record(now, self.node_id, txid, tuple(decision.external_actions))
        record = UpdateRecord(
            ts=self.clock.issue(),
            txid=txid,
            transaction=transaction,
            update=decision.update,
            origin=self.node_id,
            real_time=now,
            seen_txids=seen,
        )
        self.replica.ingest(record)
        self.transactions_initiated += 1
        return record

    def receive(self, record: UpdateRecord) -> bool:
        """Merge a remotely initiated record; returns False on duplicate."""
        self.clock.observe(record.ts)
        return self.replica.ingest(record) is not None

    def receive_batch(self, records) -> tuple:
        """Merge a batch of remotely obtained records (a gossip DELTA)
        in one undo/redo cycle; returns the records actually inserted
        (duplicates dropped)."""
        for record in records:
            self.clock.observe(record.ts)
        inserted, _outcome = self.replica.ingest_batch(records)
        return inserted
