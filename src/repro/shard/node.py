"""A SHARD node: a full replica processing transactions locally.

Each node holds a complete copy of the database, materialized from its
timestamp-ordered update log by a merge engine.  Initiating a transaction
runs the decision part *once*, against the node's current (possibly
stale) state; the resulting update is timestamped, applied locally and
handed to the broadcast layer.  Remote updates are merged wherever their
timestamp lands, with undo/redo restoring the everything-in-order
invariant — there is no other inter-node concurrency control, exactly as
Section 1.2 describes.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional, Tuple

from ..core.state import State
from ..core.transaction import Transaction
from .external import ExternalLedger
from .log import SystemLog, UpdateRecord
from .timestamps import LamportClock, Timestamp
from .undo_redo import MergeEngine, MergeEngineFactory, suffix_factory


class ShardNode:
    """One replica of the database."""

    def __init__(
        self,
        node_id: int,
        initial_state: State,
        merge_factory: MergeEngineFactory = suffix_factory,
        ledger: Optional[ExternalLedger] = None,
    ):
        self.node_id = node_id
        self.clock = LamportClock(node_id)
        self.log = SystemLog()
        self.merge: MergeEngine = merge_factory(initial_state)
        self.ledger = ledger if ledger is not None else ExternalLedger()
        self.transactions_initiated = 0
        #: crash-failure flag: an offline node neither initiates nor
        #: receives; it recovers with its log intact (fail-stop model).
        self.online = True

    @property
    def state(self) -> State:
        """The node's current database copy (its log in timestamp order)."""
        return self.merge.state

    @property
    def known_txids(self) -> FrozenSet[int]:
        return self.log.txids

    def initiate(
        self,
        txid: int,
        transaction: Transaction,
        now: float,
    ) -> UpdateRecord:
        """Run a transaction's decision part here and now.

        Performs the external actions (records them on the ledger),
        timestamps and locally applies the update, and returns the record
        for the broadcast layer to disseminate.
        """
        seen = self.known_txids
        decision = transaction.decide(self.state)
        self.ledger.record(now, self.node_id, txid, tuple(decision.external_actions))
        record = UpdateRecord(
            ts=self.clock.issue(),
            txid=txid,
            transaction=transaction,
            update=decision.update,
            origin=self.node_id,
            real_time=now,
            seen_txids=seen,
        )
        self._insert(record)
        self.transactions_initiated += 1
        return record

    def receive(self, record: UpdateRecord) -> bool:
        """Merge a remotely initiated record; returns False on duplicate."""
        self.clock.observe(record.ts)
        return self._insert(record)

    def _insert(self, record: UpdateRecord) -> bool:
        position = self.log.insert(record)
        if position is None:
            return False
        self.merge.insert(position, record.update)
        return True
