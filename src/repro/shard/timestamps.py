"""Timestamps and Lamport clocks (moved to
:mod:`repro.replica.timestamps`; re-exported here for existing imports).
"""

from ..replica.timestamps import LamportClock, Timestamp

__all__ = ["LamportClock", "Timestamp"]
