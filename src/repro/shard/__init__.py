"""The SHARD system simulation: replicated nodes, timestamps, undo/redo
merging, and execution extraction.

Per-node storage (logs, merge views, checkpoint policies) lives in
:mod:`repro.replica`; this package re-exports the storage names its
callers historically imported from here.
"""

from ..replica import (
    LamportClock,
    MergeOutcome,
    Replica,
    SystemLog,
    Timestamp,
    UpdateRecord,
)
from .agent import AgentStats, TokenAgent
from .cluster import ClusterConfig, ShardCluster
from .external import ExternalLedger, LedgerEntry
from .history import extract_execution
from .node import ShardNode
from .partial import KeyedRecord, PartialCluster, PartialConfig, PartialNode
from .sync import SyncManager, SyncStats
from .undo_redo import (
    CheckpointMerge,
    MergeEngine,
    MergeStats,
    NaiveMerge,
    SuffixMerge,
    checkpoint_factory,
    naive_factory,
    suffix_factory,
)
from .workload import PeriodicSubmitter, PoissonSubmitter

__all__ = [
    "AgentStats",
    "CheckpointMerge",
    "ClusterConfig",
    "ExternalLedger",
    "LamportClock",
    "LedgerEntry",
    "MergeEngine",
    "MergeOutcome",
    "MergeStats",
    "KeyedRecord",
    "NaiveMerge",
    "PartialCluster",
    "PartialConfig",
    "PartialNode",
    "PeriodicSubmitter",
    "PoissonSubmitter",
    "Replica",
    "ShardCluster",
    "ShardNode",
    "SyncManager",
    "SyncStats",
    "TokenAgent",
    "SuffixMerge",
    "SystemLog",
    "Timestamp",
    "UpdateRecord",
    "checkpoint_factory",
    "extract_execution",
    "naive_factory",
    "suffix_factory",
]
