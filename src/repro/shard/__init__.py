"""The SHARD system simulation: replicated nodes, timestamps, undo/redo
merging, and execution extraction."""

from .agent import AgentStats, TokenAgent
from .cluster import ClusterConfig, ShardCluster
from .external import ExternalLedger, LedgerEntry
from .history import extract_execution
from .log import SystemLog, UpdateRecord
from .node import ShardNode
from .partial import KeyedRecord, PartialCluster, PartialConfig, PartialNode
from .sync import SyncManager, SyncStats
from .timestamps import LamportClock, Timestamp
from .undo_redo import (
    CheckpointMerge,
    MergeEngine,
    MergeStats,
    NaiveMerge,
    SuffixMerge,
    checkpoint_factory,
    naive_factory,
    suffix_factory,
)
from .workload import PeriodicSubmitter, PoissonSubmitter

__all__ = [
    "AgentStats",
    "CheckpointMerge",
    "ClusterConfig",
    "ExternalLedger",
    "LamportClock",
    "LedgerEntry",
    "MergeEngine",
    "MergeStats",
    "KeyedRecord",
    "NaiveMerge",
    "PartialCluster",
    "PartialConfig",
    "PartialNode",
    "PeriodicSubmitter",
    "PoissonSubmitter",
    "ShardCluster",
    "ShardNode",
    "SyncManager",
    "SyncStats",
    "TokenAgent",
    "SuffixMerge",
    "SystemLog",
    "Timestamp",
    "UpdateRecord",
    "checkpoint_factory",
    "extract_execution",
    "naive_factory",
    "suffix_factory",
]
