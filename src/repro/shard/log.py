"""The timestamp-ordered update log (moved to :mod:`repro.replica.log`).

The log is owned by the replica subsystem now — it is the single copy of
the update sequence that merge views observe.  This module re-exports
the names for existing imports.
"""

from ..replica.log import SystemLog, UpdateRecord

__all__ = ["SystemLog", "UpdateRecord"]
