"""repro — reproduction of Lynch, Blaustein & Siegel (1986),
"Correctness Conditions for Highly Available Replicated Databases".

The package provides:

* :mod:`repro.core` — the paper's formal model: states, two-part
  transactions, integrity constraints with costs, executions with the
  prefix subsequence condition, and executable forms of the theorems;
* :mod:`repro.apps` — the Fly-by-Night airline example plus banking,
  inventory and replicated-dictionary applications;
* :mod:`repro.sim`, :mod:`repro.network`, :mod:`repro.shard` — a
  discrete-event simulation of the SHARD system itself (full replication,
  timestamp total order, undo/redo merging, reliable broadcast over a
  partitionable network), plus the Section 6 extensions: partial
  replication, mixed-mode synchronized transactions, and the token-based
  distributed agent;
* :mod:`repro.serializable` — serializable baselines for the
  availability-versus-correctness comparison;
* :mod:`repro.analysis`, :mod:`repro.harness` — measurement and the
  per-theorem experiment harness;
* ``python -m repro`` — a command-line interface over the scenarios.
"""

__version__ = "1.0.0"

from . import analysis, apps, core, harness, network, serializable, shard, sim

__all__ = [
    "analysis",
    "apps",
    "core",
    "harness",
    "network",
    "serializable",
    "shard",
    "sim",
    "__version__",
]
