"""Network partition schedules.

A partition schedule answers "can node a talk to node b at time t?".
Partitions are intervals during which the node set is split into groups;
nodes in different groups cannot exchange messages (the paper's headline
failure mode).  Outside any scheduled interval the network is fully
connected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PartitionInterval:
    """During the half-open window ``[start, end)``, the nodes are split
    into ``groups``.

    Boundary semantics: the interval is active at exactly ``t == start``
    and inactive at exactly ``t == end`` — a message sent at the instant
    the partition heals goes through.  This matches the simulator's
    convention that ``run(until)`` processes events *at* ``until``: a
    heal scheduled at ``end`` and a send at the same instant agree that
    the network is whole.

    Nodes not mentioned in any group form an implicit extra group (fully
    connected among themselves, cut off from every listed group).  At
    least one listed group must be nonempty — an interval that splits
    nobody is a schedule bug, not a no-op.
    """

    start: float
    end: float
    groups: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("partition interval must have positive length")
        if not any(self.groups):
            raise ValueError(
                "partition interval must name at least one nonempty group"
            )
        seen: set = set()
        for group in self.groups:
            if seen & group:
                raise ValueError("partition groups must be disjoint")
            seen |= group

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end

    def group_of(self, node: int) -> Optional[int]:
        for i, group in enumerate(self.groups):
            if node in group:
                return i
        return None  # the implicit remainder group

    def allows(self, a: int, b: int) -> bool:
        return self.group_of(a) == self.group_of(b)


class PartitionSchedule:
    """A set of partition intervals; empty means always fully connected.

    Overlapping intervals are allowed, and their groupings may disagree;
    the precedence rule is **conjunction**: a pair may communicate at
    time t only if *every* interval active at t allows it.  Overlaps
    therefore only ever cut more edges, never restore one — there is no
    ambiguity to reject, the stricter interval always wins.  Each
    interval's window is half-open ``[start, end)`` (see
    :class:`PartitionInterval` for the boundary rationale).
    """

    def __init__(self, intervals: Iterable[PartitionInterval] = ()):
        self.intervals: List[PartitionInterval] = list(intervals)

    @classmethod
    def always_connected(cls) -> "PartitionSchedule":
        return cls()

    @classmethod
    def split(
        cls,
        start: float,
        end: float,
        *groups: Sequence[int],
    ) -> "PartitionSchedule":
        """A single partition interval splitting the nodes as given."""
        return cls(
            [
                PartitionInterval(
                    start, end, tuple(frozenset(g) for g in groups)
                )
            ]
        )

    def add(
        self, start: float, end: float, *groups: Sequence[int]
    ) -> "PartitionSchedule":
        self.intervals.append(
            PartitionInterval(start, end, tuple(frozenset(g) for g in groups))
        )
        return self

    def connected(self, a: int, b: int, time: float) -> bool:
        """Can ``a`` send to ``b`` at ``time``?"""
        if a == b:
            return True
        return all(
            interval.allows(a, b)
            for interval in self.intervals
            if interval.active_at(time)
        )

    def healed_after(self) -> float:
        """A time after which no partition is ever active."""
        return max((i.end for i in self.intervals), default=0.0)

    def partitioned_at(self, time: float) -> bool:
        return any(i.active_at(time) for i in self.intervals)
