"""Simulated network substrate: links, partitions, reliable broadcast."""

from .broadcast import BroadcastConfig, BroadcastStats, ReliableBroadcast
from .link import DelayModel, ExponentialDelay, FixedDelay, UniformDelay
from .network import Network, NetworkStats
from .partition import PartitionInterval, PartitionSchedule

__all__ = [
    "BroadcastConfig",
    "BroadcastStats",
    "DelayModel",
    "ExponentialDelay",
    "FixedDelay",
    "Network",
    "NetworkStats",
    "PartitionInterval",
    "PartitionSchedule",
    "ReliableBroadcast",
    "UniformDelay",
]
