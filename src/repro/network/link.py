"""Message delay and loss models for simulated links."""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass


class DelayModel(abc.ABC):
    """Samples a one-way message delay."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """A nonnegative delay draw."""


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be nonnegative")

    def sample(self, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError("need 0 <= low <= high")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialDelay(DelayModel):
    """Exponential with the given mean, plus a fixed propagation floor."""

    mean: float = 1.0
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.floor < 0:
            raise ValueError("mean must be positive, floor nonnegative")

    def sample(self, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)
