"""The simulated point-to-point message network.

Delivery is partition- and loss-aware: a message sent while its endpoints
are separated (or unlucky under the loss probability) is silently dropped
— reliability is the *broadcast layer's* job (anti-entropy retransmits),
matching the paper's architecture where the broadcast protocol, not the
transport, guarantees eventual delivery.

A :class:`FaultLayer` (see :mod:`repro.chaos.inject`) can be interposed
on the transport: every would-be delivery is handed to it and comes back
as zero or more deliveries at perturbed delays — which is how message
duplication, reordering and delay spikes are injected without the
protocol layers knowing.  The layer reports what it did through the
``duplicated`` / ``reordered`` / ``delay_spiked`` counters it bumps on
:class:`NetworkStats`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from ..sim.engine import Simulator
from .link import DelayModel, FixedDelay
from .partition import PartitionSchedule

Handler = Callable[[int, object], None]  # (src, payload)


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0
    #: extra message copies scheduled by an interposed fault layer
    #: (``delivered`` counts every arriving copy, so it can exceed
    #: ``sent`` when duplication faults are active).
    duplicated: int = 0
    #: deliveries whose delay a fault layer inflated so that later
    #: sends could overtake them.
    reordered: int = 0
    #: deliveries slowed by an active delay-spike fault window.
    delay_spiked: int = 0


class FaultLayer(Protocol):
    """Transport fault interposer (implemented by ``repro.chaos``).

    Maps one would-be delivery to the delays of the copies that should
    actually arrive: ``[delay]`` passes the message through untouched,
    ``[delay, delay']`` duplicates it, and inflated values reorder it
    past later traffic.  Implementations own the bookkeeping on the
    :class:`NetworkStats` they were handed.
    """

    def deliveries(
        self,
        now: float,
        src: int,
        dst: int,
        payload: object,
        delay: float,
    ) -> List[float]: ...


class Network:
    """Connects registered node handlers through the simulator."""

    def __init__(
        self,
        sim: Simulator,
        delay: Optional[DelayModel] = None,
        partitions: Optional[PartitionSchedule] = None,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if not 0 <= loss_probability < 1:
            raise ValueError("loss probability must be in [0, 1)")
        if rng is None:
            raise ValueError(
                "Network requires an explicitly seeded random.Random "
                "(pass rng=...); implicit fallback RNGs make runs "
                "unreproducible"
            )
        self.sim = sim
        self.delay = delay or FixedDelay(1.0)
        self.partitions = partitions or PartitionSchedule.always_connected()
        self.loss_probability = loss_probability
        self.rng = rng
        self.stats = NetworkStats()
        #: optional transport fault interposer (see module docstring).
        self.fault_layer: Optional[FaultLayer] = None
        self._handlers: Dict[int, Handler] = {}

    def register(self, node_id: int, handler: Handler) -> None:
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._handlers))

    def connected(self, a: int, b: int) -> bool:
        """Are ``a`` and ``b`` mutually reachable right now?"""
        return self.partitions.connected(a, b, self.sim.now)

    def send(self, src: int, dst: int, payload: object) -> bool:
        """Attempt to send; returns False if dropped at send time.

        The partition check happens at *send* time (a message in flight
        when a partition starts still arrives — delays are small relative
        to partition durations in all our experiments).
        """
        if dst not in self._handlers:
            raise KeyError(f"unknown destination node {dst}")
        self.stats.sent += 1
        if not self.connected(src, dst):
            self.stats.dropped_partition += 1
            return False
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.stats.dropped_loss += 1
            return False
        delay = self.delay.sample(self.rng)
        if self.fault_layer is None:
            self._schedule_delivery(src, dst, payload, delay)
        else:
            for perturbed in self.fault_layer.deliveries(
                self.sim.now, src, dst, payload, delay
            ):
                self._schedule_delivery(src, dst, payload, perturbed)
        return True

    def _schedule_delivery(
        self, src: int, dst: int, payload: object, delay: float
    ) -> None:
        handler = self._handlers[dst]

        def deliver() -> None:
            self.stats.delivered += 1
            handler(src, payload)

        self.sim.schedule(delay, deliver)

    def broadcast(self, src: int, payload: object) -> int:
        """Best-effort send to every other node; returns #accepted."""
        return sum(
             1
            for dst in self.node_ids
            if dst != src and self.send(src, dst, payload)
        )
