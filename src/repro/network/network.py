"""The simulated point-to-point message network.

Delivery is partition- and loss-aware: a message sent while its endpoints
are separated (or unlucky under the loss probability) is silently dropped
— reliability is the *broadcast layer's* job (anti-entropy retransmits),
matching the paper's architecture where the broadcast protocol, not the
transport, guarantees eventual delivery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..sim.engine import Simulator
from .link import DelayModel, FixedDelay
from .partition import PartitionSchedule

Handler = Callable[[int, object], None]  # (src, payload)


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0


class Network:
    """Connects registered node handlers through the simulator."""

    def __init__(
        self,
        sim: Simulator,
        delay: Optional[DelayModel] = None,
        partitions: Optional[PartitionSchedule] = None,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if not 0 <= loss_probability < 1:
            raise ValueError("loss probability must be in [0, 1)")
        self.sim = sim
        self.delay = delay or FixedDelay(1.0)
        self.partitions = partitions or PartitionSchedule.always_connected()
        self.loss_probability = loss_probability
        self.rng = rng or random.Random(0)
        self.stats = NetworkStats()
        self._handlers: Dict[int, Handler] = {}

    def register(self, node_id: int, handler: Handler) -> None:
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._handlers))

    def connected(self, a: int, b: int) -> bool:
        """Are ``a`` and ``b`` mutually reachable right now?"""
        return self.partitions.connected(a, b, self.sim.now)

    def send(self, src: int, dst: int, payload: object) -> bool:
        """Attempt to send; returns False if dropped at send time.

        The partition check happens at *send* time (a message in flight
        when a partition starts still arrives — delays are small relative
        to partition durations in all our experiments).
        """
        if dst not in self._handlers:
            raise KeyError(f"unknown destination node {dst}")
        self.stats.sent += 1
        if not self.connected(src, dst):
            self.stats.dropped_partition += 1
            return False
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.stats.dropped_loss += 1
            return False
        delay = self.delay.sample(self.rng)
        handler = self._handlers[dst]

        def deliver() -> None:
            self.stats.delivered += 1
            handler(src, payload)

        self.sim.schedule(delay, deliver)
        return True

    def broadcast(self, src: int, payload: object) -> int:
        """Best-effort send to every other node; returns #accepted."""
        return sum(
             1
            for dst in self.node_ids
            if dst != src and self.send(src, dst, payload)
        )
