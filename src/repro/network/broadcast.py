"""Reliable broadcast in the style the paper sketches ([GLBKSS], §3.3).

Two complementary mechanisms:

* **flooding** — when a node publishes an item it immediately sends it to
  every reachable peer (low latency on the healthy part of the network);
  with ``piggyback=True`` the flood carries the sender's knowledge —
  the *entire* known set in ``mode="full"``, a compact digest of it in
  ``mode="digest"`` — which is what makes prefix subsequences transitive
  ("piggybacking information about known transactions on messages",
  Section 3.3);
* **anti-entropy** — every node periodically reconciles with chosen
  peers, which guarantees that, barring permanent failure, every node
  eventually receives every item — including across healed partitions.

The engine lives in :mod:`repro.gossip`: by default anti-entropy is the
digest-driven push–pull delta protocol (only missing records cross the
wire, unreachable peers back off exponentially); ``mode="full"`` keeps
the legacy full-set exchange for A/B comparison.

Items are opaque; uniqueness comes from caller-supplied keys.  Each
attached node's ``on_deliver`` callback fires exactly once per item, in
merge order.
"""

from __future__ import annotations

from ..gossip.service import GossipConfig, GossipService, GossipStats

#: Historical names: the broadcast layer is the gossip service.
BroadcastConfig = GossipConfig
BroadcastStats = GossipStats


class ReliableBroadcast(GossipService):
    """The broadcast service shared by all nodes of a cluster."""
