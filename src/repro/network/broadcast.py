"""Reliable broadcast in the style the paper sketches ([GLBKSS], §3.3).

Two complementary mechanisms:

* **flooding** — when a node publishes an item it immediately sends it to
  every reachable peer (low latency on the healthy part of the network);
  with ``piggyback=True`` the flood message carries the sender's *entire*
  known set, which is what makes prefix subsequences transitive
  ("piggybacking information about known transactions on messages",
  Section 3.3);
* **anti-entropy** — every node periodically sends its full known set to
  randomly chosen peers, which guarantees that, barring permanent
  failure, every node eventually receives every item — including across
  healed partitions.

Items are opaque; uniqueness comes from caller-supplied keys.  Each
attached node's ``on_deliver`` callback fires exactly once per item, in
merge order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..sim.engine import Simulator
from .network import Network

DeliverFn = Callable[[object, object], None]  # (key, item)


@dataclass
class BroadcastConfig:
    flood: bool = True
    piggyback: bool = True
    anti_entropy_interval: float = 5.0
    fanout: int = 1


@dataclass
class BroadcastStats:
    published: int = 0
    flood_messages: int = 0
    anti_entropy_messages: int = 0
    items_carried: int = 0
    deliveries: int = 0


class ReliableBroadcast:
    """The broadcast service shared by all nodes of a cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: Optional[BroadcastConfig] = None,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.network = network
        self.config = config or BroadcastConfig()
        self.rng = rng or random.Random(0)
        self.stats = BroadcastStats()
        self._known: Dict[int, Dict[object, object]] = {}
        self._deliver: Dict[int, DeliverFn] = {}
        self._anti_entropy_started = False
        self._anti_entropy_stopped = False
        #: optional predicate: nodes for which it returns False neither
        #: gossip nor get picked as gossip targets (crashed nodes).
        self.active_filter: Optional[Callable[[int], bool]] = None

    def _is_active(self, node_id: int) -> bool:
        return self.active_filter is None or self.active_filter(node_id)

    # -- membership -----------------------------------------------------

    def attach(
        self,
        node_id: int,
        on_deliver: DeliverFn,
        register_transport: bool = True,
    ) -> None:
        """Register a node.

        With ``register_transport=True`` (the default) the broadcast owns
        the node's network handler.  Pass False when the caller
        multiplexes several protocols over the transport (e.g. the
        cluster's synchronization messages) and will forward broadcast
        payloads via :meth:`receive`.
        """
        if node_id in self._known:
            raise ValueError(f"node {node_id} already attached")
        self._known[node_id] = {}
        self._deliver[node_id] = on_deliver

        if register_transport:
            def handler(src: int, payload: object, _node: int = node_id) -> None:
                self.receive(_node, payload)

            self.network.register(node_id, handler)

    def receive(self, node_id: int, payload: object) -> None:
        """Handle a broadcast payload delivered to ``node_id``."""
        kind, items = payload
        assert kind == "items"
        self._merge(node_id, items)

    def known_items(self, node_id: int) -> Tuple:
        """Snapshot of (key, item) pairs known at ``node_id``."""
        return tuple(self._known[node_id].items())

    def merge_items(self, node_id: int, items) -> None:
        """Merge externally obtained items into ``node_id``'s set (used by
        the synchronized-transaction pull protocol)."""
        self._merge(node_id, items)

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._known))

    def known_keys(self, node_id: int) -> Tuple:
        return tuple(self._known[node_id])

    # -- publishing -------------------------------------------------------

    def publish(self, node_id: int, key: object, item: object) -> None:
        """Introduce a new item at ``node_id`` and flood it (if enabled).

        The publishing node "delivers" to itself immediately (its own
        database reflects its own transactions at once).
        """
        self.stats.published += 1
        self._merge(node_id, [(key, item)])
        if self.config.flood:
            payload = (
                tuple(self._known[node_id].items())
                if self.config.piggyback
                else ((key, item),)
            )
            for dst in self.node_ids:
                if dst != node_id:
                    self.stats.flood_messages += 1
                    self.stats.items_carried += len(payload)
                    self.network.send(node_id, dst, ("items", payload))

    # -- anti-entropy -------------------------------------------------------

    def start_anti_entropy(self) -> None:
        """Begin the periodic gossip timers (staggered per node)."""
        if self._anti_entropy_started:
            return
        self._anti_entropy_started = True
        interval = self.config.anti_entropy_interval
        for i, node_id in enumerate(self.node_ids):
            offset = interval * (i + 1) / (len(self.node_ids) + 1)
            self.sim.schedule(offset, self._make_gossip_tick(node_id))

    def stop_anti_entropy(self) -> None:
        """Stop the gossip timers (no further ticks are scheduled)."""
        self._anti_entropy_stopped = True

    def _make_gossip_tick(self, node_id: int) -> Callable[[], None]:
        def tick() -> None:
            if self._anti_entropy_stopped:
                return
            self._gossip_once(node_id)
            self.sim.schedule(
                self.config.anti_entropy_interval,
                self._make_gossip_tick(node_id),
            )

        return tick

    def _gossip_once(self, node_id: int) -> None:
        if not self._is_active(node_id):
            return
        peers = [
            n for n in self.node_ids if n != node_id and self._is_active(n)
        ]
        if not peers:
            return
        targets = self.rng.sample(peers, min(self.config.fanout, len(peers)))
        payload = tuple(self._known[node_id].items())
        for dst in targets:
            self.stats.anti_entropy_messages += 1
            self.stats.items_carried += len(payload)
            self.network.send(node_id, dst, ("items", payload))

    def exchange_all(self, rounds: int = 1) -> None:
        """Synchronously push every node's set to every other node
        ``rounds`` times, bypassing timers and the network (used to
        quiesce a run after healing partitions)."""
        for _ in range(rounds):
            snapshot = {
                n: tuple(known.items()) for n, known in self._known.items()
            }
            for src, items in snapshot.items():
                for dst in self.node_ids:
                    if dst != src:
                        self._merge(dst, items)

    # -- receipt ----------------------------------------------------------

    def _merge(self, node_id: int, items) -> None:
        known = self._known[node_id]
        deliver = self._deliver[node_id]
        for key, item in items:
            if key in known:
                continue
            known[key] = item
            self.stats.deliveries += 1
            deliver(key, item)

    # -- convergence ---------------------------------------------------------

    def converged(self) -> bool:
        """All nodes know the same item set."""
        sets = [frozenset(k) for k in self._known.values()]
        return all(s == sets[0] for s in sets[1:]) if sets else True

    def missing_counts(self) -> Dict[int, int]:
        """Per node: how many globally-known items it has not yet seen."""
        universe = set()
        for known in self._known.values():
            universe |= set(known)
        return {
            n: len(universe) - len(known)
            for n, known in self._known.items()
        }
