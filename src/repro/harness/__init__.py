"""The experiment harness: table rendering and shared bench utilities."""

from .tables import Table

__all__ = ["Table"]
