"""Fixed-width table rendering for benchmark output.

Every benchmark prints one or more tables in the same format, so
EXPERIMENTS.md can quote them verbatim.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float, bool, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


class Table:
    """A simple fixed-width text table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_format_cell(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(
            c.ljust(w) for c, w in zip(self.columns, widths)
        )
        lines = [f"== {self.title} ==", header, sep]
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
