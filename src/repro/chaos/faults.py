"""The composable fault-plan DSL.

A :class:`FaultPlan` is an immutable bag of fault declarations drawn
from six primitives, each a frozen dataclass that serializes to a flat
JSON dict (``kind`` plus its parameters) and back — the wire format the
CLI emits for reproducers and the shrinker minimizes over:

* :class:`Crash` — fail-stop a node during ``[at, recover_at)``; with
  ``lose_volatile=True`` the crash also rolls the node's replica back to
  its last retained checkpoint (everything after it must be re-fetched
  through anti-entropy);
* :class:`Partition` — split the node set into groups during
  ``[start, end)``, appended onto the cluster's existing
  :class:`~repro.network.partition.PartitionSchedule` (conjunction
  precedence: overlaps only ever cut more edges);
* :class:`Duplicate` / :class:`Reorder` / :class:`DelaySpike` — message
  faults applied at the transport seam (see
  :class:`repro.chaos.inject.MessageFaultLayer`);
* :class:`ClockSkew` — jump a node's Lamport counter forward by
  ``drift`` ticks at time ``at`` (backward skew is rejected by
  construction: it could reissue timestamps).

Validation happens at plan construction: windows must have positive
length, probabilities must be actual probabilities, crashes on the same
node must not overlap (a node cannot crash while crashed), and drifts
must be forward.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type, Union


@dataclass(frozen=True)
class Crash:
    """Fail-stop ``node`` during ``[at, recover_at)``."""

    node: int
    at: float
    recover_at: float
    lose_volatile: bool = False

    KIND = "crash"

    def __post_init__(self) -> None:
        if self.recover_at <= self.at:
            raise ValueError("crash must recover strictly after it begins")
        if self.at < 0:
            raise ValueError("crash time must be nonnegative")

    @property
    def horizon(self) -> float:
        return self.recover_at


@dataclass(frozen=True)
class Partition:
    """Split the nodes into ``groups`` during ``[start, end)``."""

    start: float
    end: float
    groups: Tuple[Tuple[int, ...], ...]

    KIND = "partition"

    def __post_init__(self) -> None:
        # normalize JSON-decoded lists into hashable tuples
        object.__setattr__(
            self, "groups", tuple(tuple(g) for g in self.groups)
        )
        if self.end <= self.start:
            raise ValueError("partition window must have positive length")
        if self.start < 0:
            raise ValueError("partition start must be nonnegative")
        if not any(self.groups):
            raise ValueError("partition must name at least one nonempty group")

    @property
    def horizon(self) -> float:
        return self.end


@dataclass(frozen=True)
class _MessageWindow:
    """Common shape of the windowed message faults."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"{type(self).__name__} window must have positive length"
            )
        if self.start < 0:
            raise ValueError(
                f"{type(self).__name__} start must be nonnegative"
            )

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end

    @property
    def horizon(self) -> float:
        return self.end


@dataclass(frozen=True)
class Duplicate(_MessageWindow):
    """Each delivery in the window spawns an extra copy with probability
    ``probability``, arriving up to ``lag`` later than the original."""

    probability: float = 0.3
    lag: float = 2.0

    KIND = "duplicate"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.probability <= 1:
            raise ValueError("duplicate probability must be in [0, 1]")
        if self.lag < 0:
            raise ValueError("duplicate lag must be nonnegative")


@dataclass(frozen=True)
class Reorder(_MessageWindow):
    """Each delivery in the window is held back by ``extra_delay`` with
    probability ``probability``, letting later sends overtake it."""

    probability: float = 0.3
    extra_delay: float = 3.0

    KIND = "reorder"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.probability <= 1:
            raise ValueError("reorder probability must be in [0, 1]")
        if self.extra_delay <= 0:
            raise ValueError("reorder extra delay must be positive")


@dataclass(frozen=True)
class DelaySpike(_MessageWindow):
    """Every delivery in the window (optionally only those sent by
    ``src``) is slowed by ``extra_delay`` — a congested or flaky link."""

    extra_delay: float = 3.0
    src: Optional[int] = None

    KIND = "delay_spike"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_delay <= 0:
            raise ValueError("delay spike must add positive delay")


@dataclass(frozen=True)
class ClockSkew:
    """Jump ``node``'s Lamport counter forward by ``drift`` at ``at``."""

    node: int
    at: float
    drift: int

    KIND = "clock_skew"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("skew time must be nonnegative")
        if self.drift < 1:
            raise ValueError(
                "clock skew must be forward (drift >= 1); backward skew "
                "could reissue timestamps"
            )

    @property
    def horizon(self) -> float:
        return self.at


Fault = Union[Crash, Partition, Duplicate, Reorder, DelaySpike, ClockSkew]

FAULT_KINDS: Dict[str, Type] = {
    cls.KIND: cls
    for cls in (Crash, Partition, Duplicate, Reorder, DelaySpike, ClockSkew)
}


def fault_to_dict(fault: Fault) -> Dict[str, object]:
    out: Dict[str, object] = {"kind": fault.KIND}
    out.update(dataclasses.asdict(fault))
    return out


def fault_from_dict(data: Dict[str, object]) -> Fault:
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r}")
    return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults to inject into one run."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        crashes: Dict[int, List[Crash]] = {}
        for fault in self.faults:
            if isinstance(fault, Crash):
                crashes.setdefault(fault.node, []).append(fault)
        for node, node_crashes in crashes.items():
            node_crashes.sort(key=lambda c: c.at)
            for a, b in zip(node_crashes, node_crashes[1:]):
                if b.at < a.recover_at:
                    raise ValueError(
                        f"overlapping crashes on node {node}: "
                        f"[{a.at}, {a.recover_at}) and [{b.at}, {b.recover_at})"
                    )

    def __len__(self) -> int:
        return len(self.faults)

    def horizon(self) -> float:
        """The time by which every fault has fully played out (all
        crashes recovered, all windows closed)."""
        return max((f.horizon for f in self.faults), default=0.0)

    def check_nodes(self, n_nodes: int) -> None:
        """Reject faults referring to nodes outside ``range(n_nodes)``."""
        for fault in self.faults:
            nodes: Tuple[int, ...]
            if isinstance(fault, (Crash, ClockSkew)):
                nodes = (fault.node,)
            elif isinstance(fault, Partition):
                nodes = tuple(n for g in fault.groups for n in g)
            elif isinstance(fault, DelaySpike) and fault.src is not None:
                nodes = (fault.src,)
            else:
                continue
            for n in nodes:
                if not 0 <= n < n_nodes:
                    raise ValueError(
                        f"fault {fault!r} names node {n}, outside "
                        f"range({n_nodes})"
                    )

    def without(self, index: int) -> "FaultPlan":
        """The plan minus the fault at ``index`` (shrinking step)."""
        return FaultPlan(
            self.faults[:index] + self.faults[index + 1:]
        )

    # -- JSON wire format -------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        return [fault_to_dict(f) for f in self.faults]

    def to_json(self) -> str:
        return json.dumps(self.to_dicts(), sort_keys=True)

    @classmethod
    def from_dicts(cls, data) -> "FaultPlan":
        return cls(tuple(fault_from_dict(d) for d in data))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dicts(json.loads(text))
