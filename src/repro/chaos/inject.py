"""Applying a fault plan to a live cluster.

Two pieces:

* :class:`MessageFaultLayer` implements the transport-seam
  :class:`~repro.network.network.FaultLayer` protocol: the network hands
  it every would-be delivery and gets back the delays of the copies that
  should actually arrive.  Duplication, reordering and delay spikes all
  happen here, invisible to the protocol layers (whose robustness to
  them is precisely what the oracles then check).
* :class:`ChaosInjector` wires a :class:`~repro.chaos.faults.FaultPlan`
  into a :class:`~repro.shard.cluster.ShardCluster`: it installs the
  message layer, appends partition windows onto the cluster's schedule,
  and schedules crash/recover/skew closures into the simulator.  A crash
  flips the node's ``online`` flag (the dispatcher then drops all
  payloads); with ``lose_volatile`` it additionally rolls the replica
  back to its last retained checkpoint and scrubs the lost records from
  the gossip layer, so anti-entropy has to re-fetch them.  Recovery
  flips the flag back and immediately triggers one anti-entropy exchange
  (the catch-up pull).

Every perturbation is announced through the cluster's guarded ``_trace``
helper as a ``fault_inject`` event (plus the existing ``crash`` /
``recover`` kinds), so the trace oracle can replay exactly what the
chaos layer did against what the protocol layers claimed happened.

All randomness draws from the cluster's dedicated ``"chaos"`` seeded
stream: for a fixed scenario seed and plan, the perturbed run is
bit-identical.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..network.network import NetworkStats
from ..sim.metrics import WireStats
from .faults import (
    ClockSkew,
    Crash,
    DelaySpike,
    Duplicate,
    FaultPlan,
    Partition,
    Reorder,
)

#: (fault kind, node, info) — the injector forwards these to the tracer.
FaultReporter = Callable[[str, int, str], None]


class MessageFaultLayer:
    """The transport interposer for the windowed message faults."""

    def __init__(
        self,
        plan: FaultPlan,
        rng: random.Random,
        stats: NetworkStats,
        wire: Optional[WireStats] = None,
        on_fault: Optional[FaultReporter] = None,
    ):
        self.rng = rng
        self.stats = stats
        self.wire = wire
        self.on_fault = on_fault
        self._spikes = [f for f in plan.faults if isinstance(f, DelaySpike)]
        self._reorders = [f for f in plan.faults if isinstance(f, Reorder)]
        self._duplicates = [f for f in plan.faults if isinstance(f, Duplicate)]

    @property
    def has_faults(self) -> bool:
        return bool(self._spikes or self._reorders or self._duplicates)

    def _report(self, kind: str, node: int, info: str) -> None:
        if self.on_fault is not None:
            self.on_fault(kind, node, info)

    def deliveries(
        self,
        now: float,
        src: int,
        dst: int,
        payload: object,
        delay: float,
    ) -> List[float]:
        """Map one would-be delivery to the delays of its actual copies.

        Perturbations compose: a delivery can be spiked, reordered *and*
        duplicated in one pass (the duplicate inherits the inflated
        delay plus its own lag).  Fault windows are consulted in plan
        order and the rng is drawn per active window, so the sequence of
        draws — and hence the whole run — is seed-deterministic.
        """
        for spike in self._spikes:
            if spike.active_at(now) and (
                spike.src is None or spike.src == src
            ):
                delay += spike.extra_delay
                self.stats.delay_spiked += 1
                self._report("delay_spike", src, f"{src}->{dst}")
        for fault in self._reorders:
            if fault.active_at(now) and self.rng.random() < fault.probability:
                delay += fault.extra_delay
                self.stats.reordered += 1
                if self.wire is not None:
                    self.wire.reorder()
                self._report("reorder", src, f"{src}->{dst}")
        out = [delay]
        for fault in self._duplicates:
            if fault.active_at(now) and self.rng.random() < fault.probability:
                out.append(delay + self.rng.uniform(0.0, fault.lag))
                self.stats.duplicated += 1
                if self.wire is not None:
                    self.wire.duplicate()
                self._report("duplicate", src, f"{src}->{dst}")
        return out


class ChaosInjector:
    """Installs a fault plan into a cluster before its run starts."""

    def __init__(self, cluster, plan: FaultPlan, validate: bool = True):
        # ``validate=False`` is the campaign hot-path: the caller already
        # checked the plan against this cluster size once (at generation
        # time), so per-run and per-shrink-probe re-validation is skipped.
        if validate:
            plan.check_nodes(len(cluster.nodes))
        self.cluster = cluster
        self.plan = plan
        self.layer = MessageFaultLayer(
            plan,
            cluster.streams.stream("chaos"),
            cluster.network.stats,
            wire=cluster.broadcast.stats.wire,
            on_fault=self._on_message_fault,
        )
        self._installed = False

    def _on_message_fault(self, kind: str, node: int, info: str) -> None:
        self.cluster._trace("fault_inject", node, fault=kind, info=info)

    def install(self) -> None:
        """Wire every fault into the cluster; idempotence guarded."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        if self.layer.has_faults:
            self.cluster.network.fault_layer = self.layer
        for fault in self.plan.faults:
            if isinstance(fault, Crash):
                self._install_crash(fault)
            elif isinstance(fault, Partition):
                self.cluster.network.partitions.add(
                    fault.start, fault.end, *fault.groups
                )
            elif isinstance(fault, ClockSkew):
                self._install_skew(fault)
            # message faults live in the layer; nothing to schedule

    def _install_crash(self, fault: Crash) -> None:
        node = self.cluster.nodes[fault.node]

        def crash() -> None:
            node.online = False
            self.cluster._trace("crash", fault.node)
            if fault.lose_volatile:
                lost = node.replica.lose_volatile()
                if lost:
                    self.cluster.broadcast.forget(
                        fault.node, [record.txid for record in lost]
                    )
                self.cluster._trace(
                    "fault_inject", fault.node,
                    fault="lose_volatile", info=f"lost={len(lost)}",
                )

        def recover() -> None:
            node.online = True
            self.cluster._trace("recover", fault.node)
            # immediate catch-up pull instead of waiting out the node's
            # periodic tick (and its peers' backoff toward it).
            self.cluster.broadcast.trigger_anti_entropy(fault.node)

        self.cluster.sim.schedule_at(fault.at, crash)
        self.cluster.sim.schedule_at(fault.recover_at, recover)

    def _install_skew(self, fault: ClockSkew) -> None:
        node = self.cluster.nodes[fault.node]

        def skew() -> None:
            node.clock.advance(fault.drift)
            self.cluster._trace(
                "fault_inject", fault.node,
                fault="clock_skew", info=f"drift={fault.drift}",
            )

        self.cluster.sim.schedule_at(fault.at, skew)
