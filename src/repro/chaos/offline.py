"""Oracles over *recorded* histories: no simulator, no sockets.

The oracle suite was written against a live ``ShardCluster``; this
module rebuilds an oracle-checkable run from the files a runtime
deployment leaves behind (see :mod:`repro.runtime.history`) — per-node
log snapshots plus the merged trace-event streams — and feeds it to the
same :func:`repro.chaos.oracles.run_oracles` the simulator campaigns
use.  That is the oracle-portability claim made concrete: conditions
(1)–(4), convergence, transitivity and the trace discipline are
properties of the *recorded history*, checkable long after the cluster
is gone (Biswas & Enea's black-box stance, PAPERS.md).

``python -m repro.chaos.oracles --history DIR`` is the command-line
face of this module; it exits 0 (all oracles passed), 1 (violations)
or 2 (usage error), like ``python -m repro.chaos``.  The default
offline set includes the black-box transactional consistency checkers
(``consistency_rc`` / ``consistency_ra`` / ``consistency_causal``,
:mod:`repro.consistency`); name ``consistency_prefix`` explicitly to
run the opt-in prefix check as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.execution import TimedExecution
from ..core.state import State
from ..core.update import apply_sequence
from ..replica import UpdateRecord
from ..shard.history import extract_execution
from ..sim.trace import TraceEvent
from .faults import FaultPlan
from .oracles import OracleContext, Violation, run_oracles

#: the oracles meaningful without live cluster internals or a sound
#: time bound: exactly what a recorded history supports.  The
#: ``consistency_*`` family (``repro.consistency``) is black-box by
#: construction; ``consistency_prefix`` stays opt-in here as everywhere
#: (reordered gossip legitimately yields non-prefix snapshots).
OFFLINE_ORACLES: Tuple[str, ...] = (
    "convergence", "conditions", "transitivity", "trace",
    "consistency_rc", "consistency_ra", "consistency_causal",
)


class _RecordedBroadcast:
    """The slice of the broadcast layer the convergence oracle reads."""

    def __init__(self, logs: Dict[int, Tuple[UpdateRecord, ...]]):
        self._txids = {
            node: frozenset(r.txid for r in records)
            for node, records in logs.items()
        }

    def missing_counts(self) -> Dict[int, int]:
        union = frozenset().union(*self._txids.values()) \
            if self._txids else frozenset()
        return {
            node: len(union - known)
            for node, known in sorted(self._txids.items())
        }


@dataclass
class RecordedRun:
    """A finished run reconstructed from history files.

    Quacks like the cluster where the oracles look: ``converged()``,
    ``mutually_consistent()``, ``broadcast.missing_counts()``.
    """

    initial_state: State
    logs: Dict[int, Tuple[UpdateRecord, ...]]
    events: Tuple[TraceEvent, ...] = ()

    def __post_init__(self) -> None:
        self.broadcast = _RecordedBroadcast(self.logs)

    def converged(self) -> bool:
        sets = {
            frozenset(r.txid for r in records)
            for records in self.logs.values()
        }
        return len(sets) <= 1

    def mutually_consistent(self) -> bool:
        """Nodes with equal logs must replay to equal states (the
        paper's mutual consistency, re-derived from the records)."""
        by_log: Dict[frozenset, State] = {}
        for records in self.logs.values():
            key = frozenset(r.txid for r in records)
            state = apply_sequence(
                (r.update for r in sorted(records, key=lambda r: r.ts)),
                self.initial_state,
            )
            if key in by_log and by_log[key] != state:
                return False
            by_log.setdefault(key, state)
        return True

    def all_records(self) -> Tuple[UpdateRecord, ...]:
        """The union of the node logs, deduplicated by txid."""
        seen: Dict[int, UpdateRecord] = {}
        for records in self.logs.values():
            for record in records:
                seen.setdefault(record.txid, record)
        return tuple(sorted(seen.values(), key=lambda r: r.ts))


def check_recorded_run(
    run: RecordedRun,
    plan: Optional[FaultPlan] = None,
    capacity: int = 100,
    names: Tuple[str, ...] = OFFLINE_ORACLES,
) -> Tuple[Tuple[Violation, ...], Optional[TimedExecution]]:
    """Run the offline oracle set over a recorded run.

    Returns (violations, extracted execution).  Extraction re-derives
    every decision from the recorded prefixes and compares the updates
    with what the cluster actually shipped — conditions (1)–(4) checked
    against the recording, not against any in-memory state.
    """
    execution: Optional[TimedExecution] = None
    extract_error: Optional[str] = None
    try:
        execution = extract_execution(
            run.initial_state, run.all_records(), verify=True
        )
        execution.validate()
    except Exception as exc:
        extract_error = f"{type(exc).__name__}: {exc}"
    ctx = OracleContext(
        cluster=run,
        plan=plan if plan is not None else FaultPlan(()),
        capacity=capacity,
        execution=execution,
        extract_error=extract_error,
        expect_transitive=True,
        movers_centralized=False,
        t_bound=float("inf"),
        events=run.events,
    )
    return tuple(run_oracles(ctx, names)), execution
