"""``python -m repro.chaos`` — seeded chaos campaigns from the shell.

A campaign runs ``--runs`` independent chaos runs, each with a fresh
random fault plan and cluster seed derived from ``--seed``, evaluates
every oracle, and greedily shrinks any failing plan to a minimal JSON
reproducer.  Exit status: 0 when every run passed, 1 when any oracle
was violated, 2 on usage errors — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..sim.rng import SeededStreams
from .harness import ChaosScenario, run_chaos
from .oracles import ORACLES
from .plans import generate_plan
from .shrink import shrink_plan


def run_index(
    seed: int,
    index: int,
    scenario: Optional[ChaosScenario] = None,
    oracles: Optional[Tuple[str, ...]] = None,
    shrink: bool = True,
) -> Dict[str, object]:
    """One campaign run, derived deterministically from (seed, index).

    Module-level and picklable on purpose: the serial loop below and the
    parallel runner (:mod:`repro.perf.campaign`) both call exactly this
    function, so the worker count cannot change what any run computes.
    Every name-derived seeded stream depends only on (seed, index), not
    on execution order.

    The generated plan is validated against the cluster size *once*,
    here; the chaos run itself and every shrink probe (a subplan of the
    validated plan) skip the injector's re-validation.
    """
    base = scenario if scenario is not None else ChaosScenario()
    streams = SeededStreams(seed)
    plan_rng = streams.stream(f"plan:{index}")
    run_seed = streams.stream(f"cluster:{index}").randrange(2 ** 31)
    run_scenario = replace(base, seed=run_seed)
    plan = generate_plan(plan_rng, run_scenario)
    plan.check_nodes(run_scenario.n_nodes)
    report = run_chaos(
        run_scenario, plan, oracles=oracles, plan_validated=True
    )
    result: Dict[str, object] = {
        "run": index,
        "cluster_seed": run_seed,
        "fingerprint": report.fingerprint,
        "ok": report.ok,
        "violations": len(report.violations),
        "failure": None,
    }
    if report.ok:
        return result
    failing_oracles = tuple(sorted(
        {v.oracle for v in report.violations}
    ))
    failure: Dict[str, object] = {
        "run": index,
        "cluster_seed": run_seed,
        "oracles": list(failing_oracles),
        "violations": [v.as_dict() for v in report.violations],
        "plan": plan.to_dicts(),
    }
    if shrink:
        def still_fails(candidate) -> bool:
            rerun = run_chaos(
                run_scenario, candidate,
                oracles=oracles, plan_validated=True,
            )
            return any(
                v.oracle in failing_oracles for v in rerun.violations
            )

        shrunk = shrink_plan(plan, still_fails)
        failure["shrunk_plan"] = shrunk.plan.to_dicts()
        failure["shrunk_size"] = len(shrunk.plan)
        failure["shrink_probes"] = shrunk.probes
    result["failure"] = failure
    return result


def run_campaign(
    seed: int,
    runs: int,
    scenario: Optional[ChaosScenario] = None,
    oracles: Optional[Tuple[str, ...]] = None,
    shrink: bool = True,
) -> Dict[str, object]:
    """Run a seeded campaign; returns a JSON-ready summary dict."""
    base = scenario if scenario is not None else ChaosScenario()
    failures = []
    total_violations = 0
    for index in range(runs):
        result = run_index(
            seed, index, scenario=base, oracles=oracles, shrink=shrink
        )
        if result["failure"] is None:
            continue
        total_violations += result["violations"]
        failures.append(result["failure"])
    return {
        "seed": seed,
        "runs": runs,
        "scenario": base.as_dict(),
        "oracles": list(oracles) if oracles is not None else list(ORACLES),
        "violations": total_violations,
        "failing_runs": len(failures),
        "failures": failures,
    }


def _render_text(result: Dict[str, object]) -> str:
    lines = [
        f"chaos campaign: seed={result['seed']} runs={result['runs']} "
        f"violations={result['violations']}"
    ]
    for failure in result["failures"]:
        lines.append(
            f"  run {failure['run']}: oracles={','.join(failure['oracles'])} "
            f"plan={len(failure['plan'])} faults"
            + (
                f" -> shrunk to {failure['shrunk_size']}"
                if "shrunk_size" in failure else ""
            )
        )
        for violation in failure["violations"]:
            lines.append(
                f"    [{violation['oracle']}] {violation['description']}"
            )
    if not result["failures"]:
        lines.append("  all runs passed every oracle")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded fault-injection campaigns with invariant "
        "oracles and counterexample shrinking",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default 0)")
    parser.add_argument("--runs", type=int, default=10,
                        help="number of independent runs (default 10)")
    parser.add_argument("--format", choices=("json", "text"),
                        default="text", help="output format")
    parser.add_argument("--oracles", default=None,
                        help="comma-separated oracle subset (default: all)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking failing plans")
    parser.add_argument("--no-piggyback", action="store_true",
                        help="run the weakened intransitive ablation")
    parser.add_argument("--duration", type=float, default=None,
                        help="override workload duration")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.runs < 1:
        print("--runs must be >= 1", file=sys.stderr)
        return 2
    scenario = ChaosScenario()
    if args.no_piggyback:
        scenario = replace(scenario, piggyback=False, delay="fixed")
    if args.duration is not None:
        scenario = replace(scenario, duration=args.duration)
    oracles: Optional[Tuple[str, ...]] = None
    if args.oracles:
        oracles = tuple(
            name.strip() for name in args.oracles.split(",") if name.strip()
        )
        unknown = [name for name in oracles if name not in ORACLES]
        if unknown:
            print(f"unknown oracles: {', '.join(unknown)}", file=sys.stderr)
            return 2
    result = run_campaign(
        args.seed, args.runs,
        scenario=scenario, oracles=oracles, shrink=not args.no_shrink,
    )
    if args.format == "json":
        print(json.dumps(result, sort_keys=True, indent=2))
    else:
        print(_render_text(result))
    return 0 if result["violations"] == 0 else 1
