"""Invariant oracles: what must still hold after a faulted run.

Each oracle is a function from an :class:`OracleContext` (the finished,
quiesced run plus its extracted execution and trace stream) to a list of
:class:`Violation`\\ s — empty means the invariant held.  The registry
:data:`ORACLES` maps names to oracle functions; a campaign runs all of
them (or a selected subset) after every run.

The oracles are thin adapters over the checkers the repo already has —
``core/conditions.py``, ``apps/airline/theorems.py``, the cluster's
consistency predicates — pointed at adversarial schedules:

* ``convergence`` — after healing and quiescing, all nodes hold the same
  item set and mutually consistent states (the paper's headline claim);
* ``conditions`` — the run's history extracts to a valid execution
  satisfying the Section 3.1 conditions (1)-(4);
* ``transitivity`` — prefixes are transitively closed.  Only in the
  *default* oracle set when the configuration promises transitivity
  (``piggyback=True``); naming it explicitly always checks — that is
  how the weakened ``piggyback=False`` ablation is shown to fail;
* ``bounded_delay`` / ``k_completeness`` — the timed-execution
  refinements under a t-bound derived from the plan and the gossip
  parameters (see :func:`repro.chaos.harness.compute_t_bound`);
* ``cost_bounds`` — Corollary 8's invariant overbooking bound at the
  measured mover deficit, and Corollary 6's per-step bounds at each
  transaction's own deficit;
* ``fairness`` — Theorem 25 on sampled passenger pairs (vacuous unless
  the scenario centralizes movers — the implication must still hold);
* ``trace`` — the trace stream itself is well-formed: time-monotone,
  crash/recover alternate per node, and no node initiates, delivers or
  gossips while crashed.
* ``consistency_rc`` / ``consistency_ra`` / ``consistency_causal`` /
  ``consistency_prefix`` — the black-box transactional checkers of
  :mod:`repro.consistency` (Biswas & Enea) over the history the run
  recorded: update records plus crash events, nothing internal.  Node
  sessions split at crashes (a respawned incarnation is a new session),
  so the default-set members hold for *any* faulted run of a correct
  implementation: ``consistency_rc`` and ``consistency_ra`` always run;
  ``consistency_causal`` joins the default set only when the
  configuration promises causally closed visibility
  (``expect_transitive``, i.e. piggybacking on); ``consistency_prefix``
  runs only when named — gossip reordering legitimately produces
  non-prefix snapshots, and showing exactly that is E18's job.

``python -m repro.chaos.oracles --history DIR`` checks a *recorded*
run from its files alone and follows the ``python -m repro.chaos`` exit
convention — 0: every oracle passed; 1: at least one violation;
2: usage error (unreadable or empty history, unknown oracle).  Its
``--format=json`` object carries the campaign-report field shapes:
``violations`` is a count, ``failures`` the detailed list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Dict, List, Optional, Tuple

from ..apps.airline.theorems import (
    corollary6_overbooking,
    corollary6_underbooking,
    corollary8,
    theorem25,
)
from ..core.conditions import (
    bounded_delay_violations,
    family_predicate,
    is_k_complete,
    max_deficit,
    transitivity_violations,
)
from ..core.execution import TimedExecution
from ..sim.trace import TraceEvent
from .faults import FaultPlan

#: families whose deficits the cost-bound oracles quantify over.
MOVER_FAMILIES = ("MOVE_UP", "MOVE_DOWN")

#: event kinds a crashed node must not emit (fault_inject is exempt:
#: lose_volatile legitimately fires while the node is down).
ACTIVE_KINDS = frozenset({
    "initiate", "deliver", "merge_fastpath", "merge_undo", "merge_batch",
    "merge_certified", "gossip_syn", "gossip_delta", "gossip_skip",
})


@dataclass(frozen=True)
class Violation:
    """One oracle failure, carrying enough detail to reproduce."""

    oracle: str
    description: str
    details: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "oracle": self.oracle,
            "description": self.description,
            "details": {k: repr(v) for k, v in sorted(self.details.items())},
        }


@dataclass
class OracleContext:
    """Everything the oracles may inspect about one finished run."""

    cluster: object
    plan: FaultPlan
    capacity: int
    #: None when extraction itself failed (see ``extract_error``).
    execution: Optional[TimedExecution]
    extract_error: Optional[str]
    #: does the configuration promise transitive prefixes?
    expect_transitive: bool
    #: does the configuration centralize the movers (fairness regime)?
    movers_centralized: bool
    #: the sound delay bound for this plan + gossip configuration.
    t_bound: float
    events: Tuple[TraceEvent, ...] = ()


Oracle = Callable[[OracleContext], List[Violation]]


def oracle_convergence(ctx: OracleContext) -> List[Violation]:
    out: List[Violation] = []
    if not ctx.cluster.converged():
        out.append(Violation(
            "convergence", "nodes disagree on the delivered item set",
            {"missing": ctx.cluster.broadcast.missing_counts()},
        ))
    if not ctx.cluster.mutually_consistent():
        out.append(Violation(
            "convergence", "nodes with equal logs hold unequal states",
        ))
    return out


def oracle_conditions(ctx: OracleContext) -> List[Violation]:
    if ctx.extract_error is not None:
        return [Violation(
            "conditions",
            "history does not extract to a valid Section 3.1 execution",
            {"error": ctx.extract_error},
        )]
    return []


def oracle_transitivity(ctx: OracleContext) -> List[Violation]:
    if ctx.execution is None:
        return []
    triples = transitivity_violations(ctx.execution)
    if not triples:
        return []
    return [Violation(
        "transitivity",
        f"{len(triples)} intransitive prefix triple(s)",
        {"sample": triples[:5]},
    )]


def oracle_bounded_delay(ctx: OracleContext) -> List[Violation]:
    if ctx.execution is None:
        return []
    pairs = bounded_delay_violations(ctx.execution, ctx.t_bound)
    if not pairs:
        return []
    return [Violation(
        "bounded_delay",
        f"{len(pairs)} pair(s) violate {ctx.t_bound:.1f}-bounded delay",
        {"sample": pairs[:5], "t_bound": ctx.t_bound},
    )]


def oracle_k_completeness(ctx: OracleContext) -> List[Violation]:
    """Each transaction must be k-complete for the k that t-bounded
    delay permits it: only predecessors initiated within ``t_bound``
    of it may be missing from its prefix."""
    if ctx.execution is None:
        return []
    execution = ctx.execution
    out: List[Violation] = []
    for i in execution.indices:
        allowed = sum(
            1 for j in range(i)
            if execution.times[j] > execution.times[i] - ctx.t_bound
        )
        if not is_k_complete(execution, i, allowed):
            out.append(Violation(
                "k_completeness",
                f"transaction {i} misses more than its {allowed} "
                "recent predecessors",
                {"index": i, "deficit": execution.deficit(i),
                 "allowed": allowed},
            ))
    return out


def oracle_cost_bounds(ctx: OracleContext) -> List[Violation]:
    if ctx.execution is None:
        return []
    execution = ctx.execution
    out: List[Violation] = []
    movers_up = family_predicate("MOVE_UP")
    k = max_deficit(execution, movers_up)
    report = corollary8(execution, k, ctx.capacity)
    if not report.holds:
        out.append(Violation(
            "cost_bounds",
            f"Corollary 8 violated at measured k={k}",
            dict(report.details),
        ))
    for i in execution.indices:
        name = execution.transactions[i].name
        deficit = execution.deficit(i)
        if name == "MOVE_UP":
            step = corollary6_overbooking(execution, i, deficit, ctx.capacity)
            if not step.holds:
                out.append(Violation(
                    "cost_bounds",
                    f"Corollary 6(1) violated at transaction {i}",
                    dict(step.details),
                ))
        if name in MOVER_FAMILIES:
            step = corollary6_underbooking(execution, i, deficit, ctx.capacity)
            if not step.holds:
                out.append(Violation(
                    "cost_bounds",
                    f"Corollary 6(2) violated at transaction {i}",
                    dict(step.details),
                ))
    return out


def oracle_fairness(ctx: OracleContext) -> List[Violation]:
    """Theorem 25 on sampled passenger pairs.  The implication must hold
    unconditionally; unless the scenario centralizes the movers the
    hypothesis is false and the check is (deliberately) vacuous."""
    if ctx.execution is None or not ctx.movers_centralized:
        return []
    execution = ctx.execution
    persons = []
    for txn in execution.transactions:
        if txn.name == "REQUEST" and txn.params[0] not in persons:
            persons.append(txn.params[0])
    out: List[Violation] = []
    for p, q in list(combinations(persons[:4], 2)):
        report = theorem25(execution, p, q)
        if not report.holds:
            out.append(Violation(
                "fairness",
                f"Theorem 25 violated for pair ({p}, {q})",
                dict(report.details),
            ))
    return out


def oracle_trace(ctx: OracleContext) -> List[Violation]:
    out: List[Violation] = []
    down: Dict[int, bool] = {}
    last_time = float("-inf")
    for event in ctx.events:
        if event.time < last_time:
            out.append(Violation(
                "trace", "trace times went backwards",
                {"at": event.time, "after": last_time, "kind": event.kind},
            ))
        last_time = event.time
        node = event.node
        if event.kind == "crash":
            if down.get(node, False):
                out.append(Violation(
                    "trace", f"node {node} crashed while already down",
                    {"at": event.time},
                ))
            down[node] = True
        elif event.kind == "recover":
            if not down.get(node, False):
                out.append(Violation(
                    "trace", f"node {node} recovered while already up",
                    {"at": event.time},
                ))
            down[node] = False
        elif event.kind in ACTIVE_KINDS and down.get(node, False):
            out.append(Violation(
                "trace",
                f"{event.kind} at node {node} while crashed",
                {"at": event.time},
            ))
    still_down = sorted(n for n, d in down.items() if d)
    if still_down:
        out.append(Violation(
            "trace", f"nodes {still_down} never recovered",
        ))
    return out


def _consistency_history(ctx: OracleContext):
    """The run's checker history, built once per context from records.

    Works for both the live cluster (``.records`` dict) and the offline
    :class:`~repro.chaos.offline.RecordedRun` (``.all_records()``) —
    either way the input is recorded update records plus crash events,
    never cluster internals.
    """
    cached = getattr(ctx, "_consistency_history", None)
    if cached is None:
        from ..consistency.adapters import history_from_trace

        all_records = getattr(ctx.cluster, "all_records", None)
        if callable(all_records):
            records = all_records()
        else:
            by_txid = getattr(ctx.cluster, "records", None) or {}
            records = tuple(by_txid.values())
        cached = history_from_trace(records, ctx.events)
        ctx._consistency_history = cached
    return cached


def _make_consistency_oracle(name: str, model: str) -> Oracle:
    def oracle(ctx: OracleContext) -> List[Violation]:
        from ..consistency.checkers import check

        history = _consistency_history(ctx)
        if len(history) == 0:
            return []
        verdict = check(history, model)
        if verdict.ok:
            return []
        if verdict.status == "indeterminate":
            description = (
                f"{model} check indeterminate: "
                f"{verdict.witness.description if verdict.witness else ''}"
            )
        else:
            description = (
                f"history violates {model} consistency"
            )
        details: Dict[str, object] = {
            "status": verdict.status,
            "transactions": len(history),
            "dangling_refs": history.meta.get("dangling_refs", 0),
        }
        if verdict.witness is not None:
            details["witness"] = verdict.witness.description
            details["cycle"] = [
                reason for _, _, reason in verdict.witness.edges
            ]
        return [Violation(name, description, details)]

    return oracle


#: the consistency-model oracle family: oracle name → checker model.
CONSISTENCY_ORACLES: Dict[str, str] = {
    "consistency_rc": "read_committed",
    "consistency_ra": "read_atomic",
    "consistency_causal": "causal",
    "consistency_prefix": "prefix",
}

ORACLES: Dict[str, Oracle] = {
    "convergence": oracle_convergence,
    "conditions": oracle_conditions,
    "transitivity": oracle_transitivity,
    "bounded_delay": oracle_bounded_delay,
    "k_completeness": oracle_k_completeness,
    "cost_bounds": oracle_cost_bounds,
    "fairness": oracle_fairness,
    "trace": oracle_trace,
    **{
        name: _make_consistency_oracle(name, model)
        for name, model in CONSISTENCY_ORACLES.items()
    },
}


def run_oracles(
    ctx: OracleContext,
    names: Optional[Tuple[str, ...]] = None,
) -> List[Violation]:
    """Run the named oracles, in registry order.

    The default set is every oracle whose invariant the configuration
    promises: ``transitivity`` and ``consistency_causal`` are dropped
    when ``ctx.expect_transitive`` is False (piggybacking off —
    intransitive prefixes and causality gaps are *expected*), and
    ``consistency_prefix`` never joins by itself (reordered gossip
    legitimately yields non-prefix snapshots).  Naming an oracle
    explicitly always runs it, which is how the weakened-ablation tests
    demonstrate the violations.
    """
    if names is None:
        selected = tuple(
            name for name in ORACLES
            if name not in ("transitivity", "consistency_causal")
            or ctx.expect_transitive
        )
        selected = tuple(
            name for name in selected if name != "consistency_prefix"
        )
    else:
        selected = names
    out: List[Violation] = []
    for name in selected:
        oracle = ORACLES.get(name)
        if oracle is None:
            raise ValueError(f"unknown oracle {name!r}")
        out.extend(oracle(ctx))
    return out


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.chaos.oracles --history DIR``: check a
    *recorded* run — the history files a runtime cluster left behind —
    with the offline oracle set (see :mod:`repro.chaos.offline`).

    Exit codes and the ``--format=json`` field shapes follow
    ``python -m repro.chaos``: 0 — all oracles passed; 1 — at least one
    violation; 2 — usage error (missing records, unknown oracle).  The
    JSON report's ``violations`` is a *count* and ``failures`` the
    detailed list, matching the campaign report."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.oracles",
        description="run the offline oracles over a recorded history",
    )
    parser.add_argument(
        "--history", required=True,
        help="directory of events-*.jsonl / records-*.jsonl files",
    )
    parser.add_argument(
        "--plan", default=None,
        help="optional FaultPlan JSON file the run replayed",
    )
    parser.add_argument(
        "--oracles", default=None,
        help="comma-separated oracle names (default: the offline set)",
    )
    parser.add_argument("--capacity", type=int, default=100)
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)

    # local imports: offline depends on this module, and the runtime
    # history reader is only needed on this entry path.
    from ..apps.airline.state import AirlineState
    from ..runtime.history import load_history
    from .offline import OFFLINE_ORACLES, RecordedRun, check_recorded_run

    names = OFFLINE_ORACLES
    if args.oracles is not None:
        names = tuple(
            name.strip() for name in args.oracles.split(",") if name.strip()
        )
        unknown = sorted(set(names) - set(ORACLES))
        if unknown:
            print(f"error: unknown oracle(s) {unknown}; "
                  f"known: {sorted(ORACLES)}")
            return 2
    try:
        events, logs = load_history(args.history)
    except OSError as exc:
        print(f"error: cannot load history from {args.history}: {exc}")
        return 2
    if not logs:
        print(f"error: no records-*.jsonl files under {args.history}")
        return 2
    plan = None
    if args.plan is not None:
        with open(args.plan, "r", encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    run = RecordedRun(AirlineState(), logs, events)
    violations, execution = check_recorded_run(
        run, plan=plan, capacity=args.capacity, names=names
    )
    if args.format == "json":
        print(json.dumps({
            "nodes": sorted(logs),
            "records": len(run.all_records()),
            "events": len(events),
            "oracles": list(names),
            "transactions": len(execution) if execution is not None else 0,
            "violations": len(violations),
            "failures": [v.as_dict() for v in violations],
            "ok": not violations,
        }, indent=2, sort_keys=True))
    else:
        print(
            f"recorded run: {len(logs)} node log(s), "
            f"{len(run.all_records())} record(s), {len(events)} event(s)"
        )
        if execution is not None:
            print(
                f"extracted execution: {len(execution)} transactions; "
                "conditions (1)-(4) hold"
            )
        for violation in violations:
            print(f"VIOLATION [{violation.oracle}] {violation.description}")
        print("ok" if not violations else f"{len(violations)} violation(s)")
    return 0 if not violations else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
