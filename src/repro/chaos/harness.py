"""One chaos run: airline cluster + workload + fault plan + oracles.

:func:`run_chaos` builds a small airline deployment (the paper's running
example, so the cost-bound and fairness oracles have teeth), installs a
:class:`~repro.chaos.faults.FaultPlan` through the injector, drives a
Poisson request/cancel mix plus periodic MOVE_UP/MOVE_DOWN sweeps, runs
past the last fault, heals and quiesces, and evaluates every oracle.

Two soundness notes:

* **the t-bound** (:func:`compute_t_bound`) is what makes the
  ``bounded_delay`` / ``k_completeness`` oracles falsifiable rather than
  tautological: it is derived from the plan's fault span plus a slack
  covering worst-case gossip recovery (full backoff, one ack timeout,
  in-flight delays, fault-added delays).  A violation means the system
  failed to re-converge as fast as its own parameters promise.
* **determinism**: everything draws from the cluster's named seeded
  streams (network / gossip / arrivals / chaos), so a report's
  ``fingerprint`` — a hash over the final state, the extracted history
  and the fault counters — is bit-identical across runs of the same
  (scenario, plan) pair.  The determinism test in ``tests/chaos/``
  holds this to account.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..apps.airline.state import AirlineState
from ..apps.airline.transactions import Cancel, MoveDown, MoveUp, Request
from ..core.execution import InvalidExecutionError
from ..network.broadcast import BroadcastConfig
from ..network.link import FixedDelay, UniformDelay
from ..replica import FixedIntervalPolicy, policy_engine_factory
from ..shard.cluster import ClusterConfig, ShardCluster
from ..shard.workload import PeriodicSubmitter, PoissonSubmitter
from ..sim.trace import Tracer
from .faults import DelaySpike, Duplicate, FaultPlan, Reorder
from .inject import ChaosInjector
from .oracles import OracleContext, Violation, run_oracles

#: extra settling time appended after the later of (workload end, last
#: fault) before quiescing, so in-flight gossip drains naturally.
SETTLE = 5.0


@dataclass(frozen=True)
class ChaosScenario:
    """Deployment + workload parameters of one chaos run (JSON-flat)."""

    n_nodes: int = 3
    capacity: int = 5
    duration: float = 30.0
    request_rate: float = 0.5
    cancel_fraction: float = 0.2
    mover_interval: float = 6.0
    #: False = the deliberately weakened intransitive ablation.
    piggyback: bool = True
    #: "uniform" (default) or "fixed"; the weakened config uses "fixed"
    #: so that, absent faults, floods arrive in publish order and the
    #: transitivity oracle isolates fault-induced violations.
    delay: str = "uniform"
    anti_entropy_interval: float = 3.0
    ack_timeout: float = 4.0
    max_backoff_factor: float = 8.0
    #: replica checkpoint spacing — sparse enough that lose_volatile
    #: crashes genuinely destroy un-checkpointed log suffix.
    checkpoint_interval: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.delay not in ("uniform", "fixed"):
            raise ValueError(f"unknown delay model {self.delay!r}")

    @property
    def max_delay(self) -> float:
        return 1.0  # both models' upper bound

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass
class ChaosReport:
    """Everything one run produced, JSON-ready."""

    scenario: ChaosScenario
    plan: FaultPlan
    violations: Tuple[Violation, ...]
    fingerprint: str
    summary: Dict[str, object]
    #: the finished cluster, only when ``run_chaos(keep_cluster=True)``
    #: asked for it (E18 re-checks one run under many oracle sets);
    #: never serialized and never part of report equality.
    cluster: Optional[object] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario.as_dict(),
            "plan": self.plan.to_dicts(),
            "violations": [v.as_dict() for v in self.violations],
            "fingerprint": self.fingerprint,
            "summary": self.summary,
        }


def compute_t_bound(scenario: ChaosScenario, plan: FaultPlan) -> float:
    """A sound delay bound for this plan under this configuration.

    ``slack`` bounds how long one record can remain undelivered at one
    node through no fault of the schedule: a full backoff cycle until
    the recovery probe fires, one ack timeout, a few in-flight delays,
    plus whatever extra delay the message faults may add.  Faults can
    suppress delivery for the whole span they cover; the span is paid
    twice (a record published just before the first fault, a delivery
    owed just after the last).
    """
    extra = 0.0
    for fault in plan.faults:
        if isinstance(fault, DelaySpike):
            extra = max(extra, fault.extra_delay)
        elif isinstance(fault, Reorder):
            extra = max(extra, fault.extra_delay)
        elif isinstance(fault, Duplicate):
            extra = max(extra, fault.lag)
    slack = (
        (scenario.max_backoff_factor + 2) * scenario.anti_entropy_interval
        + 5 * scenario.max_delay
        + scenario.ack_timeout
        + extra
    )
    starts = [getattr(f, "start", getattr(f, "at", 0.0)) for f in plan.faults]
    span = plan.horizon() - min(starts) if starts else 0.0
    return span + 2 * slack


class _Arrivals:
    """Request/cancel mix over a growing passenger population."""

    def __init__(self, cancel_fraction: float):
        self.cancel_fraction = cancel_fraction
        self.next_person = 1
        self.people: List[str] = []

    def __call__(self, rng):
        if self.people and rng.random() < self.cancel_fraction:
            return Cancel(rng.choice(self.people))
        person = f"P{self.next_person}"
        self.next_person += 1
        self.people.append(person)
        return Request(person)


def _fingerprint(payload: Dict[str, object]) -> str:
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def run_chaos(
    scenario: ChaosScenario,
    plan: FaultPlan,
    oracles: Optional[Tuple[str, ...]] = None,
    plan_validated: bool = False,
    keep_cluster: bool = False,
) -> ChaosReport:
    """Simulate one faulted run to quiescence and judge it.

    ``plan_validated=True`` promises the plan was already checked
    against ``scenario.n_nodes`` (campaigns validate once per generated
    plan; shrink probes are subplans of validated plans), skipping the
    injector's per-run re-validation.  ``keep_cluster=True`` attaches
    the finished cluster (and its trace) to the report so callers can
    re-run further oracles without re-simulating."""
    tracer = Tracer(strict=True)
    delay = (
        UniformDelay(0.2, scenario.max_delay)
        if scenario.delay == "uniform"
        else FixedDelay(scenario.max_delay)
    )
    interval = scenario.checkpoint_interval
    cluster = ShardCluster(
        AirlineState(),
        ClusterConfig(
            n_nodes=scenario.n_nodes,
            seed=scenario.seed,
            delay=delay,
            broadcast=BroadcastConfig(
                piggyback=scenario.piggyback,
                anti_entropy_interval=scenario.anti_entropy_interval,
                ack_timeout=scenario.ack_timeout,
                max_backoff_factor=scenario.max_backoff_factor,
            ),
            merge_factory=policy_engine_factory(
                lambda: FixedIntervalPolicy(interval)
            ),
            tracer=tracer,
        ),
    )
    injector = ChaosInjector(cluster, plan, validate=not plan_validated)
    injector.install()

    requests = PoissonSubmitter(
        cluster,
        rate=scenario.request_rate,
        make_transaction=_Arrivals(scenario.cancel_fraction),
        rng=cluster.streams.stream("arrivals"),
        stop_at=scenario.duration,
    )
    movers = PeriodicSubmitter(
        cluster,
        interval=scenario.mover_interval,
        make_transactions=lambda: (
            MoveUp(scenario.capacity), MoveDown(scenario.capacity)
        ),
        nodes=list(range(scenario.n_nodes)),
        stop_at=scenario.duration,
    )
    requests.start()
    movers.start()

    horizon = max(scenario.duration, plan.horizon()) + SETTLE
    cluster.run(until=horizon)
    cluster.quiesce()

    execution = None
    extract_error: Optional[str] = None
    try:
        execution = cluster.extract_execution(verify=True)
    except InvalidExecutionError as exc:
        extract_error = str(exc)

    ctx = OracleContext(
        cluster=cluster,
        plan=plan,
        capacity=scenario.capacity,
        execution=execution,
        extract_error=extract_error,
        expect_transitive=scenario.piggyback,
        movers_centralized=False,  # sweeps run at every node
        t_bound=compute_t_bound(scenario, plan),
        events=tracer.events,
    )
    violations = tuple(run_oracles(ctx, oracles))

    net = cluster.network.stats
    summary: Dict[str, object] = {
        "transactions": len(cluster.records),
        "rejected_submissions": cluster.rejected_submissions,
        "delivered": net.delivered,
        "dropped_partition": net.dropped_partition,
        "duplicated": net.duplicated,
        "reordered": net.reordered,
        "delay_spiked": net.delay_spiked,
        "final_state": repr(cluster.nodes[0].state),
    }
    fingerprint = _fingerprint({
        "summary": summary,
        "prefixes": (
            [list(p) for p in execution.prefixes]
            if execution is not None else extract_error
        ),
        "violations": [v.as_dict() for v in violations],
    })
    return ChaosReport(
        scenario=scenario,
        plan=plan,
        violations=violations,
        fingerprint=fingerprint,
        summary=summary,
        cluster=cluster if keep_cluster else None,
    )
