"""Deterministic fault injection with invariant oracles (``repro.chaos``).

The subsystem turns the repo's correctness checkers into *oracles under
adversarial schedules*: a composable :class:`FaultPlan` DSL
(:mod:`~repro.chaos.faults`), an injection layer threading through the
simulator, network, replica and gossip seams
(:mod:`~repro.chaos.inject`), an oracle registry replaying each run
against convergence, the Section 3 conditions and the airline cost
bounds (:mod:`~repro.chaos.oracles`), and a seeded plan generator plus
greedy shrinker behind ``python -m repro.chaos``
(:mod:`~repro.chaos.plans`, :mod:`~repro.chaos.shrink`,
:mod:`~repro.chaos.cli`).
"""

from .faults import (
    FAULT_KINDS,
    ClockSkew,
    Crash,
    DelaySpike,
    Duplicate,
    Fault,
    FaultPlan,
    Partition,
    Reorder,
    fault_from_dict,
    fault_to_dict,
)
from .harness import ChaosReport, ChaosScenario, compute_t_bound, run_chaos
from .inject import ChaosInjector, MessageFaultLayer
from .oracles import ORACLES, OracleContext, Violation, run_oracles
from .plans import generate_plan
from .shrink import ShrinkResult, shrink_plan

__all__ = [
    "FAULT_KINDS",
    "ORACLES",
    "ChaosInjector",
    "ChaosReport",
    "ChaosScenario",
    "ClockSkew",
    "Crash",
    "DelaySpike",
    "Duplicate",
    "Fault",
    "FaultPlan",
    "MessageFaultLayer",
    "OracleContext",
    "Partition",
    "Reorder",
    "ShrinkResult",
    "Violation",
    "compute_t_bound",
    "fault_from_dict",
    "fault_to_dict",
    "generate_plan",
    "run_chaos",
    "run_oracles",
    "shrink_plan",
]
