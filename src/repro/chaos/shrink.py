"""Greedy counterexample shrinking (single-delta ddmin).

Given a failing plan and a ``still_fails`` predicate (rerun the plan,
check that a violation of the *original* failing oracles survives), the
shrinker repeatedly tries dropping one fault at a time, keeping any
removal that preserves the failure, until no single removal does.  Runs
are deterministic, so every probe is a faithful replay — the result is
a locally minimal reproducer, typically one to three faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .faults import FaultPlan


@dataclass(frozen=True)
class ShrinkResult:
    plan: FaultPlan
    #: how many candidate plans were re-run while shrinking.
    probes: int


def shrink_plan(
    plan: FaultPlan,
    still_fails: Callable[[FaultPlan], bool],
    max_probes: int = 64,
) -> ShrinkResult:
    """Minimize ``plan`` while ``still_fails`` holds.

    ``still_fails`` must be True for ``plan`` itself (the caller found
    the violation); the returned plan also satisfies it, and no single
    fault can be removed from it without losing the failure (unless the
    probe budget ran out first).
    """
    current = plan
    probes = 0
    improved = True
    while improved and probes < max_probes:
        improved = False
        for index in range(len(current.faults)):
            if probes >= max_probes:
                break
            candidate = current.without(index)
            probes += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break  # restart scan over the smaller plan
    return ShrinkResult(plan=current, probes=probes)
