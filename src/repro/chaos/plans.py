"""Seeded random fault-plan generation.

:func:`generate_plan` draws a small random plan from a seeded
``random.Random``: a mix of crashes (sometimes volatile-state-losing),
partitions, duplication/reordering windows, delay spikes and clock
skews, all confined to the front of the workload window so the run has
time to heal before quiescence.  Identical (rng state, scenario) pairs
yield identical plans — the campaign derives one rng per run index from
its master seed.
"""

from __future__ import annotations

import random
from typing import List

from .faults import (
    ClockSkew,
    Crash,
    DelaySpike,
    Duplicate,
    Fault,
    FaultPlan,
    Partition,
    Reorder,
)
from .harness import ChaosScenario

#: fault kinds by sampling weight: message faults and partitions are the
#: bread and butter, crashes common, skews occasional.
_KIND_WEIGHTS = (
    ("crash", 3),
    ("partition", 3),
    ("duplicate", 2),
    ("reorder", 2),
    ("delay_spike", 1),
    ("clock_skew", 1),
)


def _pick_kind(rng: random.Random) -> str:
    total = sum(w for _, w in _KIND_WEIGHTS)
    roll = rng.randrange(total)
    for kind, weight in _KIND_WEIGHTS:
        roll -= weight
        if roll < 0:
            return kind
    raise AssertionError("unreachable")


def _window(rng: random.Random, duration: float) -> tuple:
    """A fault window starting in the front 60% of the run, short enough
    to heal well before the workload ends."""
    start = rng.uniform(0.0, 0.6 * duration)
    length = rng.uniform(0.1 * duration, 0.3 * duration)
    return start, start + length


def generate_plan(
    rng: random.Random,
    scenario: ChaosScenario,
    max_faults: int = 4,
) -> FaultPlan:
    """Draw a random plan of 1..max_faults faults for ``scenario``."""
    n_nodes = scenario.n_nodes
    duration = scenario.duration
    faults: List[Fault] = []
    crashed_nodes: List[int] = []
    for _ in range(rng.randint(1, max_faults)):
        kind = _pick_kind(rng)
        if kind == "crash":
            free = [n for n in range(n_nodes) if n not in crashed_nodes]
            if not free:
                continue  # one crash per node keeps windows disjoint
            node = rng.choice(free)
            crashed_nodes.append(node)
            start, end = _window(rng, duration)
            faults.append(Crash(
                node=node, at=start, recover_at=end,
                lose_volatile=rng.random() < 0.5,
            ))
        elif kind == "partition":
            victim = rng.randrange(n_nodes)
            rest = tuple(n for n in range(n_nodes) if n != victim)
            start, end = _window(rng, duration)
            faults.append(Partition(
                start=start, end=end, groups=((victim,), rest),
            ))
        elif kind == "duplicate":
            start, end = _window(rng, duration)
            faults.append(Duplicate(
                start=start, end=end,
                probability=rng.uniform(0.1, 0.5),
                lag=rng.uniform(0.5, 3.0),
            ))
        elif kind == "reorder":
            start, end = _window(rng, duration)
            faults.append(Reorder(
                start=start, end=end,
                probability=rng.uniform(0.1, 0.5),
                extra_delay=rng.uniform(1.0, 4.0),
            ))
        elif kind == "delay_spike":
            start, end = _window(rng, duration)
            faults.append(DelaySpike(
                start=start, end=end,
                extra_delay=rng.uniform(1.0, 4.0),
                src=rng.choice([None, rng.randrange(n_nodes)]),
            ))
        else:  # clock_skew
            faults.append(ClockSkew(
                node=rng.randrange(n_nodes),
                at=rng.uniform(0.0, 0.6 * duration),
                drift=rng.randint(1, 40),
            ))
    return FaultPlan(tuple(faults))
