"""E16 — deterministic parallel campaigns and the merge hot path.

The performance pass has three measurable claims:

* **worker independence** — the parallel campaign runner produces a
  byte-identical payload (and hence aggregate fingerprint) at
  ``workers=1`` and ``workers=N``: parallelism changes wall-clock only,
  never results;
* **parallel speedup** — fanning a chaos campaign over a process pool
  cuts wall-clock roughly with the core count.  This is a *hardware*
  claim: the table records the host's usable cores and the asserted
  floor scales with them (a single-core container can prove
  determinism, not speedup);
* **cost-cache effectiveness** — on E11's out-of-order merge regimes
  the incremental per-prefix constraint-cost cache avoids the great
  majority of cost re-evaluations (pooled hit rate > 80%), while the
  in-order regime rides the fast path and needs no cache at all.

Beyond the rendered table, the run emits machine-readable numbers —
including the ``smoke_baseline`` section the CI perf gate
(``python -m repro.perf.gate``) re-runs and compares — to
``benchmarks/results/BENCH_perf.json``.
"""

import json
import os

from common import RESULTS_DIR, run_once, save_tables

from repro.chaos.harness import ChaosScenario
from repro.harness import Table
from repro.perf import (
    DEFAULT_CELLS,
    PerfTimer,
    campaign_json,
    run_parallel_campaign,
    run_parallel_cells,
)
from repro.perf.cells import aggregate_hit_rate
from repro.perf.gate import smoke_baseline, usable_cores

BENCH_SMOKE = bool(os.environ.get("BENCH_SMOKE"))
#: the headline campaign: 1,000 seeded chaos runs (smoke: 30).
CAMPAIGN_RUNS = 30 if BENCH_SMOKE else 1000
CAMPAIGN_SEED = 0
CAMPAIGN_SCENARIO = ChaosScenario(duration=8.0 if BENCH_SMOKE else 12.0)
PARALLEL_WORKERS = 2 if BENCH_SMOKE else 8
#: regimes where undo/redo (and hence the cache) does real work.
OUT_OF_ORDER = ("jittery", "partitioned")


def _campaign_pass(workers, timer):
    return run_parallel_campaign(
        CAMPAIGN_SEED, CAMPAIGN_RUNS,
        workers=workers, scenario=CAMPAIGN_SCENARIO, shrink=False,
        timer=timer,
    )


def _experiment():
    cores = usable_cores()
    timer = PerfTimer()

    with timer.span("serial"):
        serial = _campaign_pass(1, PerfTimer())
    with timer.span("parallel"):
        parallel = _campaign_pass(PARALLEL_WORKERS, PerfTimer())
    serial_s = timer.timings.total("serial")
    parallel_s = timer.timings.total("parallel")
    speedup = serial_s / parallel_s if parallel_s else 0.0

    cells = run_parallel_cells(DEFAULT_CELLS, workers=1, timer=timer)
    pooled_rate = aggregate_hit_rate(cells)
    out_of_order = [r for r in cells if r["regime"] in OUT_OF_ORDER]
    out_of_order_rate = aggregate_hit_rate(out_of_order)

    smoke = smoke_baseline(workers=1)

    table = Table(
        "E16: parallel campaign + merge hot path "
        f"({CAMPAIGN_RUNS} runs, {cores} core(s))",
        ["measure", "value"],
    )
    table.add("workers (parallel pass)", PARALLEL_WORKERS)
    table.add("serial wall-clock (s)", round(serial_s, 2))
    table.add("parallel wall-clock (s)", round(parallel_s, 2))
    table.add("speedup", round(speedup, 2))
    table.add("payloads identical", serial == parallel)
    table.add("aggregate fingerprint", serial["aggregate_fingerprint"])
    table.add("campaign violations", serial["violations"])
    table.add("cost-cache hit rate (pooled)", round(pooled_rate, 4))
    table.add("cost-cache hit rate (out-of-order)",
              round(out_of_order_rate, 4))
    for row in cells:
        table.add(f"cell {row['cell']} hit rate", row["cost_hit_rate"])

    payload = {
        "experiment": "E16",
        "smoke": BENCH_SMOKE,
        "hardware": {"cores": cores},
        "campaign": {
            "seed": CAMPAIGN_SEED,
            "runs": CAMPAIGN_RUNS,
            "scenario": CAMPAIGN_SCENARIO.as_dict(),
            "workers": PARALLEL_WORKERS,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(speedup, 3),
            "identical_across_workers": serial == parallel,
            "aggregate_fingerprint": serial["aggregate_fingerprint"],
            "violations": serial["violations"],
        },
        "cells": cells,
        "cost_hit_rate": round(pooled_rate, 4),
        "cost_hit_rate_out_of_order": round(out_of_order_rate, 4),
        "phase_timings": timer.as_dict(),
        "smoke_baseline": smoke,
    }
    return table, (serial, parallel, payload)


def test_e16_perf_campaign(benchmark):
    table, (serial, parallel, payload) = run_once(benchmark, _experiment)
    save_tables("E16_perf_campaign", [table])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_perf.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # worker independence: byte-identical payloads, any worker count.
    assert campaign_json(serial) == campaign_json(parallel)
    assert payload["campaign"]["identical_across_workers"]

    # the healthy campaign passes every oracle.
    assert payload["campaign"]["violations"] == 0

    # cost cache: where undo/redo does real work the cache absorbs the
    # great majority of re-evaluations.
    assert payload["cost_hit_rate_out_of_order"] > 0.80
    cell = {r["regime"]: r for r in payload["cells"]}
    assert cell["jittery"]["cost_hit_rate"] > 0.80
    assert cell["partitioned"]["cost_hit_rate"] > 0.80
    # the in-order regime rides the fast path instead.
    assert cell["single-writer"]["fastpath_rate"] >= 0.95

    # speedup is a hardware claim: assert the floor only when the host
    # actually has the cores (>= 3x needs at least 4 usable cores).
    cores = payload["hardware"]["cores"]
    if cores >= 4 and not BENCH_SMOKE:
        assert payload["campaign"]["speedup"] >= 3.0
    elif cores >= 2:
        # some parallelism must still materialize.
        assert payload["campaign"]["speedup"] >= 1.2
