"""E3 — grouped underbooking and total-cost bounds (Corollaries 10, 11).

The underbooking cost admits no unconditional invariant bound (a burst of
requests with no intervening MOVE_UPs makes it arbitrary), so the paper
bounds it only at *normal states* — the states after the groups of a
grouping in which every REQUEST/CANCEL is followed by a burst of
MOVE_UPs that drives the apparent underbooking cost to zero.  This bench
generates grouped executions across k, validates the grouping, and checks
both Corollary 10 (underbooking <= 300k at normal states) and Corollary
11 (total cost <= 900k at normal states).
"""

import random

from common import run_once, save_tables

from repro.apps.airline.generator import GeneratorConfig, generate
from repro.apps.airline.theorems import corollary10, corollary11
from repro.analysis import normal_state_costs
from repro.harness import Table

CAPACITY = 10
N_TRANSACTIONS = 200
SEEDS = range(4)
KS = (0, 1, 2, 4)


def _experiment():
    table = Table(
        "E3: costs at normal states vs k (grouped runs, capacity 10)",
        ["k", "bound 300k", "worst normal underbooking",
         "bound 900k", "worst normal total", "Cor10", "Cor11"],
    )
    rows = []
    for k in KS:
        worst_under = 0.0
        worst_total = 0.0
        c10_ok = True
        c11_ok = True
        for seed in SEEDS:
            config = GeneratorConfig(
                capacity=CAPACITY,
                n_transactions=N_TRANSACTIONS,
                k=k,
                drop="random",
                grouped=True,
            )
            run = generate(config, random.Random(seed * 31 + k))
            r10 = corollary10(run.execution, run.grouping, k, CAPACITY)
            r11 = corollary11(run.execution, run.grouping, k, CAPACITY)
            c10_ok &= bool(r10.hypothesis_holds and r10.holds)
            c11_ok &= bool(r11.hypothesis_holds and r11.holds)
            worst_under = max(worst_under, r10.details["max_normal_underbooking"])
            worst_total = max(worst_total, r11.details["max_normal_total"])
        table.add(k, 300 * k, worst_under, 900 * k, worst_total, c10_ok, c11_ok)
        rows.append((k, worst_under, worst_total, c10_ok, c11_ok))
    return table, rows


def test_e3_grouped_bounds(benchmark):
    table, rows = run_once(benchmark, _experiment)
    save_tables("E3_underbooking_grouping", [table])
    for k, worst_under, worst_total, c10, c11 in rows:
        assert c10, f"Corollary 10 failed at k={k}"
        assert c11, f"Corollary 11 failed at k={k}"
        assert worst_under <= 300 * k
        assert worst_total <= 900 * k
        if k == 0:
            assert worst_under == 0 and worst_total == 0
