"""E14 — partial replication (Section 6) and dissemination ablations.

Three parts:

* **E14a partial replication** — the paper's first requested
  generalization: a two-flight airline with flight f1 on nodes {0,1} and
  f2 on nodes {1,2}.  Per flight, the full theory applies (executions
  validate, Corollary 8 holds at the measured k), replicas of each flight
  converge, and the bytes on the wire scale with replication degree, not
  cluster size;
* **E14b piggyback ablation** — Section 3.3 says transitivity can be
  guaranteed "by piggybacking information about known transactions on
  messages"; with piggyback off, transitivity violations appear;
* **E14c checkpoint interval ablation** — the [SKS] storage/recompute
  trade: sweep the snapshot interval between the suffix engine
  (interval 1) and no snapshots at all.
"""

import random

from common import run_once, save_tables

from repro.apps.airline import AirlineState, MoveUp, Request
from repro.apps.airline.simulation import AirlineScenario, run_airline_scenario
from repro.apps.airline.theorems import corollary8
from repro.core import is_transitive, transitivity_violations
from repro.harness import Table
from repro.network import BroadcastConfig, PartitionSchedule
from repro.shard import checkpoint_factory, naive_factory, suffix_factory
from repro.shard.partial import PartialCluster, PartialConfig

CAPACITY = 5


# -- E14a: partial replication ------------------------------------------------


def _partial_run(placement, seed=3):
    cluster = PartialCluster(
        {"f1": AirlineState(), "f2": AirlineState()},
        PartialConfig(
            placement=placement,
            seed=seed,
            partitions=PartitionSchedule.split(10, 40, [0], [1, 2]),
        ),
    )
    rng = random.Random(seed)
    t = 0.0
    for i in range(60):
        t += 1.0
        key = "f1" if i % 2 == 0 else "f2"
        cluster.route_submit(key, Request(f"{key}-P{i}"), rng, at=t)
        if rng.random() < 0.7:
            cluster.route_submit(key, MoveUp(CAPACITY), rng, at=t + 0.4)
    cluster.run(until=90.0)
    cluster.quiesce()
    return cluster


def _partial_table():
    partial_placement = {
        0: frozenset({"f1"}),
        1: frozenset({"f1", "f2"}),
        2: frozenset({"f2"}),
    }
    full_placement = {i: frozenset({"f1", "f2"}) for i in range(3)}
    table = Table(
        "E14a: partial vs full replication, two flights, 30s partition",
        ["placement", "flight", "txns", "mover k", "bound holds",
         "consistent", "items carried"],
    )
    payload = {}
    for label, placement in (("partial", partial_placement),
                             ("full", full_placement)):
        cluster = _partial_run(placement)
        for key in ("f1", "f2"):
            e = cluster.extract_execution(key)
            e.validate()
            k = max(
                (e.deficit(i) for i in e.indices
                 if e.transactions[i].name == "MOVE_UP"),
                default=0,
            )
            report = corollary8(e, k, CAPACITY)
            table.add(label, key, len(e), k,
                      report.hypothesis_holds and report.holds,
                      cluster.mutually_consistent(),
                      cluster.stats.items_carried if key == "f1" else "-")
            payload[(label, key)] = report
        payload[label] = cluster.stats.items_carried
    return table, payload


# -- E14b: piggyback ablation ---------------------------------------------------


def _piggyback_table():
    table = Table(
        "E14b: piggyback ablation (Section 3.3's transitivity mechanism)",
        ["piggyback", "seed", "transitive", "violations"],
    )
    counts = {True: 0, False: 0}
    partitions = PartitionSchedule.split(10, 40, [0], [1, 2])
    for piggyback in (True, False):
        for seed in range(4):
            run = run_airline_scenario(
                AirlineScenario(
                    capacity=CAPACITY, n_nodes=3, duration=60,
                    seed=100 + seed, partitions=partitions,
                    broadcast=BroadcastConfig(
                        flood=True, piggyback=piggyback,
                        anti_entropy_interval=50.0,
                    ),
                )
            )
            violations = len(transitivity_violations(run.execution))
            table.add(piggyback, seed, is_transitive(run.execution),
                      violations)
            counts[piggyback] += violations
    return table, counts


# -- E14c: checkpoint interval ablation --------------------------------------------


def _checkpoint_table():
    table = Table(
        "E14c: snapshot interval ablation ([SKS] storage vs recompute)",
        ["engine", "updates applied", "snapshots held"],
    )
    engines = [
        ("suffix (interval 1)", suffix_factory),
        ("checkpoint-4", checkpoint_factory(4)),
        ("checkpoint-16", checkpoint_factory(16)),
        ("checkpoint-64", checkpoint_factory(64)),
        ("naive (no snapshots)", naive_factory),
    ]
    rows = {}
    for label, factory in engines:
        run = run_airline_scenario(
            AirlineScenario(
                capacity=CAPACITY, n_nodes=3, duration=60, seed=5,
                request_rate=2.0,
                partitions=PartitionSchedule.split(10, 40, [0], [1, 2]),
                merge_factory=factory,
            )
        )
        applied = sum(
            n.merge.stats.updates_applied for n in run.cluster.nodes
        )
        snapshots = max(
            n.merge.stats.snapshots_held for n in run.cluster.nodes
        )
        table.add(label, applied, snapshots)
        rows[label] = (applied, snapshots)
    return table, rows


def _experiment():
    t1, partial_payload = _partial_table()
    t2, piggyback_counts = _piggyback_table()
    t3, checkpoint_rows = _checkpoint_table()
    return (t1, t2, t3), (partial_payload, piggyback_counts, checkpoint_rows)


def test_e14_partial_and_ablations(benchmark):
    tables, (partial, piggyback, checkpoints) = run_once(benchmark, _experiment)
    save_tables("E14_partial_and_ablations", list(tables))

    # E14a: bounds hold per flight under both placements, and partial
    # placement moves fewer items.
    for label in ("partial", "full"):
        for key in ("f1", "f2"):
            report = partial[(label, key)]
            assert report.hypothesis_holds and report.holds
    assert partial["partial"] < partial["full"]

    # E14b: piggyback eliminates transitivity violations; without it,
    # they occur.
    assert piggyback[True] == 0
    assert piggyback[False] > 0

    # E14c: applied-updates decrease monotonically as snapshots increase.
    order = ["naive (no snapshots)", "checkpoint-64", "checkpoint-16",
             "checkpoint-4", "suffix (interval 1)"]
    applied = [checkpoints[label][0] for label in order]
    assert applied == sorted(applied, reverse=True)
    snapshots = [checkpoints[label][1] for label in order]
    assert snapshots == sorted(snapshots)
