"""E7 — fairness (Theorems 25, 27 and the Section 5.5 redesign).

Measures request-order inversions in the final state of simulated runs
where the moving agent learns about requests out of order (a partition
separates one group of requesters from the agent):

* baseline design, centralized movers: inversions occur — the final
  order is fixed by when the *agent* learned about the requests
  (Theorem 25), not by request time;
* timestamped redesign (Section 5.5): the same schedule yields zero
  inversions — priority follows request timestamps;
* Theorem 25 is checked on every run (once the agent sees both requests
  its apparent order is final), and Theorem 27 on the scripted
  t-bounded-delay construction.
"""

from common import run_once, save_tables

from repro.analysis import final_order_inversions
from repro.apps.airline import precedes
from repro.apps.airline.priority import known
from repro.apps.airline.simulation import AirlineScenario, run_airline_scenario
from repro.apps.airline.theorems import theorem25
from repro.apps.airline.timestamped import (
    TSAirlineState,
    ts_known,
    ts_precedes,
)
from repro.harness import Table
from repro.network import PartitionSchedule

CAPACITY = 6
SEEDS = range(5)


def _scenario(seed, design):
    # the agent (node 0) is cut off from nodes 1-2 for most of the run,
    # so requests arriving there reach it late and out of order.
    partitions = PartitionSchedule.split(10, 60, [0], [1, 2])
    return AirlineScenario(
        capacity=CAPACITY,
        n_nodes=3,
        duration=80,
        seed=seed,
        request_rate=0.8,
        cancel_fraction=0.0,
        partitions=partitions,
        mover_nodes=[0],
        design=design,
    )


def _experiment():
    table = Table(
        "E7: request-order inversions in the final state (centralized agent,"
        " 50s partition)",
        ["design", "seed", "comparable pairs", "inversions",
         "Thm25 holds (all pairs)"],
    )
    totals = {"baseline": 0, "timestamped": 0}
    thm25_all = True
    for design in ("baseline", "timestamped"):
        for seed in SEEDS:
            run = run_airline_scenario(_scenario(seed, design))
            e = run.execution
            if design == "baseline":
                report = final_order_inversions(
                    e, precedes, known, by_real_time=True
                )
                # check Theorem 25 on every requester pair.
                people = sorted(
                    {t.params[0] for t in e.transactions
                     if t.name == "REQUEST"}
                )
                ok = all(
                    theorem25(e, p, q).holds
                    for i, p in enumerate(people)
                    for q in people[i + 1:]
                )
                thm25_all &= ok
            else:
                report = final_order_inversions(
                    e, ts_precedes, ts_known, by_real_time=True
                )
                ok = None
            totals[design] += report.inversions
            table.add(design, seed, report.comparable_pairs,
                      report.inversions, ok)
    t27 = _theorem27_table()
    return (table, t27[0]), (totals, thm25_all, t27[1])


def _theorem27_table():
    """Theorem 27 on orderly, t-bounded-delay constructions: a request
    gap of at least t forces priority; a smaller gap does not."""
    from repro.apps.airline import AirlineState, MoveDown, MoveUp, Request
    from repro.apps.airline.theorems import theorem27
    from repro.core import ExecutionBuilder, TimedExecution

    table = Table(
        "E7b: Theorem 27 (t-bounded delay, orderly): gap >= t fixes order",
        ["request gap", "t", "hypotheses hold", "P < Q throughout", "holds"],
    )
    all_hold = True
    for gap in (2.0, 10.0):
        b = ExecutionBuilder(AirlineState())
        times = [0.0, gap, gap + 10, gap + 20, gap + 30]
        txns = [Request("P"), Request("Q"), MoveUp(1), MoveUp(1), MoveDown(1)]
        for txn, at in zip(txns, times):
            b.add(txn, time=at)
        e = TimedExecution(b.build(), times)
        report = theorem27(e, 5.0, "P", "Q")
        all_hold &= bool(report.holds)
        table.add(gap, 5.0, report.hypothesis_holds,
                  report.conclusion_holds, report.holds)
    return table, all_hold


def test_e7_fairness(benchmark):
    tables, (totals, thm25_all, thm27_all) = run_once(benchmark, _experiment)
    save_tables("E7_fairness", list(tables))
    assert thm25_all, "Theorem 25 violated on a simulated run"
    assert thm27_all, "Theorem 27 violated on the scripted construction"
    # the baseline design inverts request order under the partition...
    assert totals["baseline"] > 0
    # ...the Section 5.5 redesign eliminates the inversions entirely.
    assert totals["timestamped"] == 0
