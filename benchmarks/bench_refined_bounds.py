"""E5 — witness-refined bounds are tighter (Theorems 20, 21).

Section 5.3 sharpens the k-completeness results: only *critical* missing
transactions matter — an assigned passenger only threatens overbooking if
the mover's prefix misses their assignment witness.  This bench generates
runs with a large plain deficit, measures the witness-refined deficits,
and shows (a) Theorem 20's per-step bounds hold with the refined k, and
(b) the refined bound 900*k_refined is substantially tighter than the
plain 900*k_plain.
"""

from common import run_once, save_tables

from repro.analysis import refined_deficits
from repro.apps.airline.generator import random_airline_execution
from repro.apps.airline.theorems import (
    theorem20_overbooking,
    theorem20_underbooking,
)
from repro.harness import Table
from repro.sim.metrics import mean

CAPACITY = 10
KS = (2, 4, 8, 16)


def _experiment():
    table = Table(
        "E5: plain vs witness-refined deficits (capacity 10, 300 txns)",
        ["plain k regime", "mean plain k", "mean refined k (over)",
         "mean refined k (under)", "Thm20.1 holds", "Thm20.2 holds",
         "mean bound tightening ($)"],
    )
    rows = []
    for k in KS:
        e = random_airline_execution(
            seed=k,
            capacity=CAPACITY,
            n_transactions=300,
            k=k,
            drop="random",
        )
        refined = refined_deficits(e)
        t1_holds = all(
            theorem20_overbooking(e, i, CAPACITY).holds for i in e.indices
        )
        t2_holds = all(
            theorem20_underbooking(e, i, CAPACITY).holds for i in e.indices
        )
        mean_plain = mean([float(v) for v in refined.plain])
        mean_over = mean([float(v) for v in refined.overbooking])
        mean_under = mean([float(v) for v in refined.underbooking])
        tightening = 900 * (mean_plain - mean_over)
        table.add(
            k, round(mean_plain, 2), round(mean_over, 2),
            round(mean_under, 2), t1_holds, t2_holds, round(tightening, 1),
        )
        rows.append((k, mean_plain, mean_over, t1_holds, t2_holds))
    return table, rows


def test_e5_refined_bounds(benchmark):
    table, rows = run_once(benchmark, _experiment)
    save_tables("E5_refined_bounds", [table])
    for k, mean_plain, mean_over, t1, t2 in rows:
        assert t1, f"Theorem 20.1 failed at k={k}"
        assert t2, f"Theorem 20.2 failed at k={k}"
        # the refinement must never be looser, and should be strictly
        # tighter on average once plain deficits are nontrivial.
        assert mean_over <= mean_plain + 1e-9
    assert any(mean_over < mean_plain for _, mean_plain, mean_over, _, _ in rows)
