"""E10 — the "continuous flavor" and the deferred probabilistic analysis.

The paper's closing claim: "small changes in available information lead
to small perturbations in correctness conditions" — in contrast to
serializability's all-or-nothing character.  Two experiments:

* **continuity sweep** — degrade the information regime gradually
  (anti-entropy interval with flooding off) and measure both the realized
  deficit k* of the MOVE_UPs and the worst overbooking cost: cost moves
  gradually with information, and every run respects 900·k*;
* **part (2) of Section 1.3** — across many seeds, form the empirical
  distribution of k* and compose it with the conditional bound to produce
  statements of the paper's desired form "with probability p, the cost
  remains at most c";
* **bandwidth/delay frontier** — the same interval sweep under full-set
  vs digest anti-entropy: the delivered-delay distribution each regime
  buys and the modeled bytes it costs, quantifying what delta
  reconciliation saves at every point of the continuity curve.
"""

from common import run_once, save_tables

from repro.analysis import (
    CalibrationPoint,
    KDistribution,
    compose,
    verify_conditional,
)
from repro.apps.airline import make_airline_application, overbooking_bound
from repro.apps.airline.simulation import AirlineScenario, run_airline_scenario
from repro.harness import Table
from repro.network import BroadcastConfig
from repro.sim.metrics import Summary

CAPACITY = 10
INTERVALS = (0.5, 2.0, 8.0, 20.0)
SEEDS = range(8)
#: seeds for the (more expensive) full-vs-digest frontier sweep.
WIRE_SEEDS = range(3)


def _run(seed, interval, mode="digest"):
    return run_airline_scenario(
        AirlineScenario(
            capacity=CAPACITY,
            n_nodes=3,
            duration=60,
            seed=seed,
            request_rate=1.5,
            broadcast=BroadcastConfig(
                flood=False, anti_entropy_interval=interval, mode=mode
            ),
        )
    )


def _mover_k(execution):
    return max(
        (execution.deficit(i) for i in execution.indices
         if execution.transactions[i].name == "MOVE_UP"),
        default=0,
    )


def _experiment():
    app = make_airline_application(capacity=CAPACITY)
    bound = overbooking_bound()

    t1 = Table(
        "E10a: continuity — cost tracks information (gossip interval sweep)",
        ["gossip interval (s)", "mean mover k*", "max mover k*",
         "worst overbooking ($)", "900k* respected"],
    )
    points_by_interval = {}
    for interval in INTERVALS:
        points = []
        for seed in SEEDS:
            run = _run(seed, interval)
            e = run.execution
            k_star = _mover_k(e)
            worst = max(app.cost(s, "overbooking") for s in e.actual_states)
            points.append(CalibrationPoint(k_star, worst))
        points_by_interval[interval] = points
        mean_k = sum(p.k_star for p in points) / len(points)
        max_k = max(p.k_star for p in points)
        worst_cost = max(p.max_cost for p in points)
        t1.add(interval, round(mean_k, 1), max_k, worst_cost,
               verify_conditional(points, bound))

    # part (2): empirical P(k* <= k) at the middling regime, composed
    # with the conditional bound.
    calibration = points_by_interval[INTERVALS[2]]
    dist = KDistribution(tuple(p.k_star for p in calibration))
    t2 = Table(
        "E10b: probabilistic composition, gossip interval "
        f"{INTERVALS[2]}s ({len(SEEDS)} runs)",
        ["k", "P(k* <= k)", "=> P(overbooking <= $)"],
    )
    for pb in compose(dist, bound):
        t2.add(pb.k, round(pb.probability, 3), pb.cost_limit)

    # the same composition with the Theorem 20 witness-refined k* — the
    # paper's own remedy for the plain bound's looseness.
    from repro.analysis import refined_deficits

    refined_samples = []
    refined_points = []
    for seed in SEEDS:
        run = _run(seed, INTERVALS[2])
        refined = refined_deficits(run.execution)
        movers = [
            i for i in run.execution.indices
            if run.execution.transactions[i].name == "MOVE_UP"
        ]
        k_ref = max((refined.overbooking[i] for i in movers), default=0)
        worst = max(
            app.cost(s, "overbooking")
            for s in run.execution.actual_states
        )
        refined_samples.append(k_ref)
        refined_points.append(CalibrationPoint(k_ref, worst))
    refined_dist = KDistribution(tuple(refined_samples))
    t3 = Table(
        "E10c: same composition with Theorem 20's refined k*",
        ["refined k", "P(k* <= k)", "=> P(overbooking <= $)"],
    )
    for pb in compose(refined_dist, bound):
        t3.add(pb.k, round(pb.probability, 3), pb.cost_limit)

    return (t1, t2, t3), (points_by_interval, refined_points)


def _wire_experiment():
    """E10d: every point of the continuity curve, priced in bytes — the
    delivered-delay distribution each gossip interval buys, under
    full-set versus digest anti-entropy."""
    table = Table(
        "E10d: bandwidth/delay frontier — full-set vs digest anti-entropy"
        f" ({len(WIRE_SEEDS)} seeds per cell)",
        ["gossip interval (s)", "mode", "item copies", "wire bytes",
         "delay p50", "delay p95"],
    )
    totals = {}
    for interval in INTERVALS:
        for mode in ("full", "digest"):
            copies = 0
            wire_bytes = 0
            delays = []
            for seed in WIRE_SEEDS:
                run = _run(seed, interval, mode=mode)
                cluster = run.cluster
                assert cluster.converged()
                assert cluster.mutually_consistent()
                stats = cluster.broadcast.stats
                copies += stats.items_carried
                wire_bytes += stats.wire.bytes
                delays.extend(stats.delivery_delays)
            summary = Summary.of(delays)
            totals[(interval, mode)] = (copies, wire_bytes)
            table.add(interval, mode, copies, wire_bytes,
                      round(summary.p50, 3), round(summary.p95, 3))
    return table, totals


def test_e10d_wire_frontier(benchmark):
    table, totals = run_once(benchmark, _wire_experiment)
    save_tables("E10d_wire_frontier", [table])
    for interval in INTERVALS:
        full_copies, full_bytes = totals[(interval, "full")]
        digest_copies, digest_bytes = totals[(interval, "digest")]
        # digest reconciliation is cheaper at EVERY information regime:
        # the continuity curve keeps its shape, the price tag shrinks.
        assert digest_copies < full_copies, (interval, totals)
        assert digest_bytes < full_bytes, (interval, totals)


def test_e10_continuity(benchmark):
    tables, (points_by_interval, refined_points) = run_once(
        benchmark, _experiment
    )
    save_tables("E10_continuity", list(tables))
    bound = overbooking_bound()
    # the conditional theorem leaves an empirical footprint on EVERY run.
    for points in points_by_interval.values():
        assert verify_conditional(points, bound)
    # the refined-k conditional holds too, and is much tighter.
    assert verify_conditional(refined_points, bound)
    plain_max = max(
        p.k_star for p in points_by_interval[INTERVALS[2]]
    )
    refined_max = max(p.k_star for p in refined_points)
    assert refined_max < plain_max
    # continuity: information deficit grows with the gossip interval.
    mean_k = {
        interval: sum(p.k_star for p in pts) / len(pts)
        for interval, pts in points_by_interval.items()
    }
    assert mean_k[INTERVALS[0]] < mean_k[INTERVALS[-1]]
