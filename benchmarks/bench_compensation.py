"""E4 — compensating transactions repair costs (Lemmas 1, 12; Cor 2, 13).

Drives the database into badly overbooked / underbooked states, then
extends the execution with an atomic suffix of compensating transactions
(MOVE_DOWNs / MOVE_UPs) whose first member sees a subsequence missing k
of the indices.  Checks Corollary 13: the post-suffix cost is at most
f(k) — with f the constraint's 900k / 300k bound — and reports how many
compensators the repair needed.
"""

from common import run_once, save_tables

from repro.apps.airline import AirlineState, Request, make_airline_application
from repro.apps.airline.theorems import (
    corollary13_overbooking,
    corollary13_underbooking,
)
from repro.core import ExecutionBuilder
from repro.harness import Table

CAPACITY = 10
KS = (0, 1, 2, 4)


def _overbooked_execution():
    """An execution whose *final* state is overbooked by 4: every MOVE_UP
    sees only its own passenger's request (maximally divergent agents),
    so each seats a different passenger."""
    builder = ExecutionBuilder(AirlineState())
    from repro.apps.airline import MoveUp

    for i in range(CAPACITY + 4):
        request_index = builder.add(Request(f"P{i}"))
        builder.add(MoveUp(CAPACITY), prefix=(request_index,))
    return builder.build()


def _underbooked_execution():
    """Requests only: maximally underbooked."""
    builder = ExecutionBuilder(AirlineState())
    for i in range(25):
        builder.add(Request(f"P{i}"))
    return builder.build()


def _experiment():
    app = make_airline_application(capacity=CAPACITY)
    over = _overbooked_execution()
    under = _underbooked_execution()

    t1 = Table(
        "E4a: MOVE_DOWN suffix repairs overbooking (Cor 13.1)",
        ["k missing", "cost before", "f(k)=900k", "cost after", "suffix len",
         "holds"],
    )
    rows1 = []
    for k in KS:
        kept = tuple(over.indices)[: len(over) - k]
        report = corollary13_overbooking(over, kept, CAPACITY)
        after = report.details.get(
            "cost_after_suffix", report.details.get("cost", 0.0)
        )
        t1.add(
            k,
            app.cost(over.final_state, "overbooking"),
            900 * k,
            after,
            report.details["suffix_len"],
            report.holds,
        )
        rows1.append((k, after, report.holds))

    t2 = Table(
        "E4b: MOVE_UP suffix repairs underbooking (Cor 13.2)",
        ["k missing", "cost before", "f(k)=300k", "cost after", "suffix len",
         "holds"],
    )
    rows2 = []
    for k in KS:
        kept = tuple(under.indices)[: len(under) - k]
        report = corollary13_underbooking(under, kept, CAPACITY)
        after = report.details.get(
            "cost_after_suffix", report.details.get("cost", 0.0)
        )
        t2.add(
            k,
            app.cost(under.final_state, "underbooking"),
            300 * k,
            after,
            report.details["suffix_len"],
            report.holds,
        )
        rows2.append((k, after, report.holds))

    return (t1, t2), (rows1, rows2, over, under, app)


def test_e4_compensation(benchmark):
    (tables, payload) = run_once(benchmark, _experiment)
    save_tables("E4_compensation", tables)
    rows1, rows2, over, under, app = payload
    assert app.cost(under.final_state, "underbooking") > 0
    for k, after, holds in rows1:
        assert holds
        assert after <= 900 * k + 1e-9
    for k, after, holds in rows2:
        assert holds
        assert after <= 300 * k + 1e-9
