"""E18 — cross-model consistency ablation matrix (repro.consistency).

The black-box checkers place the paper's conditions (1)-(4) on the
standard transactional consistency-model map by *measurement*: every
ablation runs the same seeded chaos harness and is judged by the
conditions oracle and all four Biswas & Enea checkers at once, so the
matrix records which ablations break which models first.

Qualitative claims asserted:

* **baseline and clock skew are clean everywhere** — forward Lamport
  skew reorders nothing the checkers can see, because the recorded
  timestamp order *is* the issue order;
* **a healed partition separates prefix from causal** — replicas that
  converged through different gossip paths serve non-prefix snapshots
  at some seeds while causal consistency holds at every seed (the
  matrix's first adjacent separation);
* **piggyback off separates causal from read atomic** — without
  piggybacked metadata a snapshot can skip a causal predecessor, so
  ``consistency_causal`` fires at some seed while ``consistency_ra``
  stays clean (the second adjacent separation, the checker twin of the
  transitivity oracle's ablation);
* **volatile-loss crashes are exactly a session-guarantee loss** — with
  sessions split per node incarnation (the adapters' default) every
  model holds, while merging each node's incarnations into one session
  turns the same recorded runs into read-committed violations.

Results land in ``benchmarks/results/BENCH_consistency.json``.
"""

import json
import os

from common import RESULTS_DIR, run_once, save_tables

from repro.chaos.faults import (
    ClockSkew,
    Crash,
    Duplicate,
    FaultPlan,
    Partition,
    Reorder,
)
from repro.chaos.harness import ChaosScenario, run_chaos
from repro.consistency import check_all
from repro.consistency.adapters import history_from_trace
from repro.harness import Table

BENCH_SMOKE = bool(os.environ.get("BENCH_SMOKE"))
RUNS = 8 if BENCH_SMOKE else 40
# smoke keeps the assertions meaningful by starting at the first seed
# window where the partition ablations produce violations.
SEED_BASE = 8 if BENCH_SMOKE else 0

#: every oracle the matrix scores, in lattice order.
MATRIX_ORACLES = (
    "conditions",
    "consistency_rc",
    "consistency_ra",
    "consistency_causal",
    "consistency_prefix",
)

#: checker-model column order for the session-guarantee section.
MODELS = ("read_committed", "read_atomic", "causal", "prefix")


def _partition_plan(_seed):
    return FaultPlan((
        Partition(start=5.0, end=20.0, groups=((0,), (1, 2))),
    ))


def _crash_plan(_seed):
    return FaultPlan((
        Crash(node=1, at=8.0, recover_at=14.0, lose_volatile=True),
        Crash(node=2, at=16.0, recover_at=22.0, lose_volatile=True),
    ))


def _reorder_dup_plan(_seed):
    return FaultPlan((
        Reorder(start=2.0, end=28.0, probability=0.6, extra_delay=3.0),
        Duplicate(start=2.0, end=28.0, probability=0.4, lag=2.0),
    ))


def _skew_plan(_seed):
    return FaultPlan((ClockSkew(node=1, at=5.0, drift=50.0),))


#: ablation name → (scenario factory, plan factory).
ABLATIONS = {
    "baseline": (
        lambda seed: ChaosScenario(seed=seed),
        lambda seed: FaultPlan(()),
    ),
    "piggyback_off": (
        lambda seed: ChaosScenario(
            seed=seed, piggyback=False, delay="fixed"
        ),
        _partition_plan,
    ),
    "crash_volatile": (
        lambda seed: ChaosScenario(seed=seed),
        _crash_plan,
    ),
    "reorder_dup": (
        lambda seed: ChaosScenario(seed=seed),
        _reorder_dup_plan,
    ),
    "clock_skew": (
        lambda seed: ChaosScenario(seed=seed),
        _skew_plan,
    ),
    "partition": (
        lambda seed: ChaosScenario(seed=seed, delay="fixed"),
        _partition_plan,
    ),
}


def _run_matrix():
    matrix = {}
    session_rows = {"split": dict.fromkeys(MODELS, 0),
                    "naive": dict.fromkeys(MODELS, 0)}
    for name, (mk_scenario, mk_plan) in ABLATIONS.items():
        counts = dict.fromkeys(MATRIX_ORACLES, 0)
        indeterminate = 0
        keep = name == "crash_volatile"
        for seed in range(SEED_BASE, SEED_BASE + RUNS):
            report = run_chaos(
                mk_scenario(seed), mk_plan(seed),
                oracles=MATRIX_ORACLES, keep_cluster=keep,
            )
            seen = set()
            for violation in report.violations:
                if violation.details.get("status") == "indeterminate":
                    indeterminate += 1
                    continue
                seen.add(violation.oracle)
            for oracle in seen:
                counts[oracle] += 1
            if keep:
                cluster = report.cluster
                records = tuple(cluster.records.values())
                events = cluster.config.tracer.events
                for mode, split in (("split", True), ("naive", False)):
                    history = history_from_trace(
                        records, events, split_sessions_at_crash=split
                    )
                    for verdict in check_all(history):
                        if verdict.status == "violation":
                            session_rows[mode][verdict.model] += 1
        matrix[name] = {
            "runs": RUNS,
            "failing_runs_by_oracle": counts,
            "indeterminate": indeterminate,
        }
    return matrix, session_rows


def _experiment():
    matrix, session_rows = _run_matrix()

    table = Table(
        f"E18: consistency ablation matrix ({RUNS} runs per ablation; "
        "failing runs per oracle)",
        ["ablation"] + [o.replace("consistency_", "") for o in
                        MATRIX_ORACLES],
    )
    for name, row in matrix.items():
        counts = row["failing_runs_by_oracle"]
        table.add(name, *[counts[o] for o in MATRIX_ORACLES])

    sessions = Table(
        "E18: crash_volatile under split vs merged node sessions "
        "(model violations, pooled over runs)",
        ["sessions"] + list(MODELS),
    )
    for mode in ("split", "naive"):
        sessions.add(mode, *[session_rows[mode][m] for m in MODELS])

    separations = []
    for name, row in matrix.items():
        counts = row["failing_runs_by_oracle"]
        for weaker, stronger in zip(
            MATRIX_ORACLES[1:], MATRIX_ORACLES[2:]
        ):
            if counts[stronger] > 0 and counts[weaker] == 0:
                separations.append(
                    {"ablation": name, "holds": weaker.replace(
                        "consistency_", ""),
                     "breaks": stronger.replace("consistency_", "")}
                )

    payload = {
        "experiment": "E18",
        "smoke": BENCH_SMOKE,
        "runs_per_ablation": RUNS,
        "matrix": matrix,
        "session_guarantees": session_rows,
        "adjacent_separations": separations,
    }
    return [table, sessions], payload


def test_e18_consistency_matrix(benchmark):
    tables, payload = run_once(benchmark, _experiment)
    save_tables("E18_consistency_matrix", tables)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_consistency.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    matrix = payload["matrix"]

    # the quiet rows: no ablation-free or skewed run violates anything.
    for name in ("baseline", "clock_skew"):
        assert all(
            count == 0
            for count in matrix[name]["failing_runs_by_oracle"].values()
        ), matrix[name]

    # at least one ablation separates two adjacent models (the
    # acceptance criterion); in full runs the partition ablation breaks
    # prefix while causal holds.
    assert payload["adjacent_separations"], matrix
    partition = matrix["partition"]["failing_runs_by_oracle"]
    assert partition["consistency_prefix"] > 0, matrix
    assert partition["consistency_causal"] == 0, matrix
    no_piggyback = matrix["piggyback_off"]["failing_runs_by_oracle"]
    assert no_piggyback["consistency_causal"] > 0, matrix
    assert no_piggyback["consistency_ra"] == 0, matrix

    # volatile-loss crashes: clean per incarnation, session violations
    # when incarnations are merged.
    assert all(
        count == 0 for count in payload["session_guarantees"]["split"].values()
    ), payload["session_guarantees"]
    assert payload["session_guarantees"]["naive"]["read_committed"] > 0

    # weaker models never fail more often than stronger ones.
    for name, row in matrix.items():
        counts = row["failing_runs_by_oracle"]
        chain = [counts[o] for o in MATRIX_ORACLES[1:]]
        assert chain == sorted(chain), (name, counts)
