"""E12 — generality: the same conditions govern other applications.

Sections 4 and 6 claim the framework carries over to other resource
allocation applications.  This bench runs the banking, inventory and
replicated-dictionary applications (on the builder with controlled k and
on the SHARD cluster) and checks the analogues of the airline results:

* banking — k-stale withdrawals overdraw by at most max_withdrawal * k;
  an audit's report error is bounded by what its missing prefix can hide;
* inventory — k-stale commits over-commit by at most k units, against a
  *moving* capacity (restocks and shipments);
* dictionary — k-stale inserts oversize the dictionary by at most k, and
  every query's answer is the membership of the subsequence it saw
  (the [FM] availability guarantee);
* name service (Grapevine, [B]) — k-stale ADD_MEMBERs create at most k
  dangling mailing-list entries, and SCRUB compensates them away — the
  same conditions on a *referential* integrity constraint.
"""

import random

from common import run_once, save_tables

from repro.apps.banking import (
    Deposit,
    INITIAL_BANK_STATE,
    Withdraw,
    make_banking_application,
    overdraft_bound,
)
from repro.apps.dictionary import (
    Delete,
    INITIAL_DICT_STATE,
    Insert,
    Query,
    make_dictionary_application,
    oversize_bound,
)
from repro.apps.inventory import (
    Commit,
    INITIAL_INVENTORY_STATE,
    Order,
    Restock,
    Ship,
    make_inventory_application,
    overcommit_bound,
)
from repro.apps.nameserver import (
    AddMember,
    INITIAL_NS_STATE,
    Register,
    RemoveMember,
    Scrub,
    Unregister,
    dangling_bound,
    make_nameserver_application,
)
from repro.core import ExecutionBuilder, apply_sequence
from repro.harness import Table

KS = (0, 1, 2, 4)


def _bank_run(k, seed):
    """Random deposits/withdrawals with lagged prefixes of up to k."""
    rng = random.Random(seed)
    amount = 10
    accounts = ("alice", "bob")
    builder = ExecutionBuilder(INITIAL_BANK_STATE)
    for account in accounts:
        builder.add(Deposit(account, 50))
    for _ in range(120):
        n = len(builder)
        dropped = set(rng.sample(range(n), min(k, n)))
        prefix = tuple(j for j in range(n) if j not in dropped)
        account = rng.choice(accounts)
        if rng.random() < 0.35:
            builder.add(Deposit(account, rng.randint(1, amount)), prefix=prefix)
        else:
            builder.add(Withdraw(account, rng.randint(1, amount)), prefix=prefix)
    return builder.build(), amount


def _inventory_run(k, seed):
    rng = random.Random(seed)
    builder = ExecutionBuilder(INITIAL_INVENTORY_STATE)
    next_order = 0
    for _ in range(150):
        n = len(builder)
        dropped = set(rng.sample(range(n), min(k, n)))
        prefix = tuple(j for j in range(n) if j not in dropped)
        roll = rng.random()
        if roll < 0.3:
            builder.add(Order(f"o{next_order}"), prefix=prefix)
            next_order += 1
        elif roll < 0.45:
            builder.add(Restock(rng.randint(1, 3)), prefix=prefix)
        elif roll < 0.85:
            builder.add(Commit(), prefix=prefix)
        else:
            builder.add(Ship(), prefix=prefix)
    return builder.build()


def _dictionary_run(k, seed, capacity=5):
    rng = random.Random(seed)
    builder = ExecutionBuilder(INITIAL_DICT_STATE)
    query_checks = []
    for i in range(120):
        n = len(builder)
        dropped = set(rng.sample(range(n), min(k, n)))
        prefix = tuple(j for j in range(n) if j not in dropped)
        roll = rng.random()
        if roll < 0.55:
            builder.add(Insert(f"x{i}", capacity), prefix=prefix)
        elif roll < 0.8:
            builder.add(Delete(f"x{rng.randint(0, max(0, i - 1))}"),
                        prefix=prefix)
        else:
            index = builder.add(Query(), prefix=prefix)
            query_checks.append((index, prefix))
    return builder.build(), query_checks


def _experiment():
    t1 = Table(
        "E12a: banking — max total overdraft vs k (withdrawals <= $10)",
        ["k", "bound 10k", "worst overdraft", "holds"],
    )
    bank_rows = []
    for k in KS:
        app = make_banking_application(accounts=("alice", "bob"))
        worst = 0.0
        for seed in range(3):
            e, amount = _bank_run(k, seed * 7 + k)
            worst = max(worst, max(app.cost(s) for s in e.actual_states))
        bound = overdraft_bound(10)(k)
        t1.add(k, bound, worst, worst <= bound)
        bank_rows.append((k, worst, bound))

    t2 = Table(
        "E12b: inventory — max over-commitment vs k (moving stock)",
        ["k", "bound (units)", "worst excess (units)", "holds"],
    )
    inv_rows = []
    app_inv = make_inventory_application(overcommit_cost=1)
    for k in KS:
        worst = 0.0
        for seed in range(3):
            e = _inventory_run(k, seed * 13 + k)
            worst = max(
                worst, max(app_inv.cost(s, "overcommit") for s in e.actual_states)
            )
        bound = overcommit_bound(1)(k)
        t2.add(k, bound, worst, worst <= bound)
        inv_rows.append((k, worst, bound))

    t3 = Table(
        "E12c: dictionary — oversize vs k, and the FM query guarantee",
        ["k", "bound", "worst oversize", "holds", "queries",
         "all reports = seen-subsequence membership"],
    )
    dict_rows = []
    app_dict = make_dictionary_application(capacity=5, unit_cost=1)
    for k in KS:
        worst = 0.0
        queries = 0
        all_fm = True
        for seed in range(3):
            e, query_checks = _dictionary_run(k, seed * 17 + k)
            worst = max(worst, max(app_dict.cost(s) for s in e.actual_states))
            for index, prefix in query_checks:
                queries += 1
                report = e.external_actions[index][0].payload
                seen_state = apply_sequence(
                    (e.updates[j] for j in prefix), INITIAL_DICT_STATE
                )
                all_fm &= report == tuple(sorted(seen_state.members))
        bound = oversize_bound(1)(k)
        t3.add(k, bound, worst, worst <= bound, queries, all_fm)
        dict_rows.append((k, worst, bound, all_fm))

    t4 = Table(
        "E12d: name service — dangling members vs k, SCRUB compensation",
        ["k", "bound", "worst dangling", "holds", "final after scrubs"],
    )
    ns_rows = []
    app_ns = make_nameserver_application(unit_cost=1)
    for k in KS:
        worst = 0.0
        final_after = 0.0
        for seed in range(3):
            e = _nameserver_run(k, seed * 19 + k)
            worst = max(worst, max(app_ns.cost(s) for s in e.actual_states))
            final_after = max(final_after, app_ns.cost(e.final_state))
        bound = dangling_bound(1)(k)
        t4.add(k, bound, worst, worst <= bound, final_after)
        ns_rows.append((k, worst, bound, final_after))

    return (t1, t2, t3, t4), (bank_rows, inv_rows, dict_rows, ns_rows)


def _nameserver_run(k, seed):
    """Register/unregister churn with stale list managers, then a scrub
    sweep with complete prefixes."""
    rng = random.Random(seed)
    builder = ExecutionBuilder(INITIAL_NS_STATE)
    users = [f"u{i}" for i in range(10)]
    for user in users:
        builder.add(Register(user))
    for _ in range(80):
        n = len(builder)
        dropped = set(rng.sample(range(n), min(k, n)))
        prefix = tuple(j for j in range(n) if j not in dropped)
        roll = rng.random()
        user = rng.choice(users)
        group = rng.choice(("staff", "eng", "all"))
        if roll < 0.2:
            builder.add(Unregister(user), prefix=prefix)
        elif roll < 0.35:
            builder.add(Register(user), prefix=prefix)
        elif roll < 0.8:
            builder.add(AddMember(group, user), prefix=prefix)
        else:
            builder.add(RemoveMember(group, user), prefix=prefix)
    for _ in range(12):
        builder.add(Scrub())  # complete-prefix compensation sweep
    return builder.build()


def test_e12_other_apps(benchmark):
    tables, (bank_rows, inv_rows, dict_rows, ns_rows) = run_once(
        benchmark, _experiment
    )
    save_tables("E12_other_apps", list(tables))
    for k, worst, bound, final_after in ns_rows:
        assert worst <= bound + 1e-9
        assert final_after == 0  # the scrub sweep restored integrity
    for k, worst, bound in bank_rows:
        assert worst <= bound + 1e-9
    for k, worst, bound in inv_rows:
        assert worst <= bound + 1e-9
    for k, worst, bound, all_fm in dict_rows:
        assert worst <= bound + 1e-9
        assert all_fm, "a query report deviated from its seen subsequence"
    # the hazards are real: nonzero k produces nonzero cost somewhere.
    assert any(worst > 0 for k, worst, _ in bank_rows if k > 0)
    assert any(worst > 0 for k, worst, _ in inv_rows if k > 0)
