"""E19 — the certified commutativity skip on the merge hot path.

The certifier (``repro.certify``) derives, per unordered update-family
pair, a machine-checked commutation verdict; the merge engine consults
it to apply a non-tail insert *in place* whenever the displaced suffix
is entirely certified-commutative, skipping the undo/redo replay.  The
experiment runs each merge regime twice with the same seed — baseline
undo/redo vs certified skip — and asserts:

* **equivalence** — both arms finish in the identical final state in
  every regime (equal state fingerprints): the skip changes the repair
  cost, never the fold;
* **payoff** — in the out-of-order regimes (jittery, partitioned) the
  skip actually fires (certified hits > 0) and replays fewer update
  applications than the baseline;
* **certificate shape** — the derived airline pair table contains the
  paper's structure: ``cancel`` self-commutes, the disjoint-parameter
  pairs commute conditionally, and ``request`` does *not* self-commute
  (wait-list order is priority, Section 4.2).

Beyond the rendered table, the run writes machine-readable numbers —
including the ``smoke_baseline`` section the CI certify gate
(``python -m repro.perf.gate --certify``) re-runs and compares — to
``benchmarks/results/BENCH_certify.json``.
"""

import json
import os

from common import RESULTS_DIR, run_once, save_tables

from repro.certify import airline_spec, build_pair_table
from repro.harness import Table
from repro.perf import (
    CERTIFY_DEFAULT_CELLS,
    CERTIFY_SMOKE_CELLS,
    run_certify_cell,
)
from repro.perf.gate import certify_smoke_baseline

BENCH_SMOKE = bool(os.environ.get("BENCH_SMOKE"))
CELLS = CERTIFY_SMOKE_CELLS if BENCH_SMOKE else CERTIFY_DEFAULT_CELLS
OUT_OF_ORDER = ("jittery", "partitioned")


def _experiment():
    pairs = build_pair_table(airline_spec())
    verdicts = {key: entry["certified"] for key, entry in pairs.items()}
    cells = [run_certify_cell(spec) for spec in CELLS]
    smoke = certify_smoke_baseline()

    table = Table(
        "E19: certified commutativity skip (baseline vs certified, "
        "same seed)",
        ["regime", "states agree", "certified hits", "undo/redo b->c",
         "applied b->c", "replay reduction"],
    )
    for row in cells:
        table.add(
            row["regime"],
            row["states_agree"],
            row["certified"]["certified_hits"],
            f"{row['baseline']['undo_redo_merges']}->"
            f"{row['certified']['undo_redo_merges']}",
            f"{row['baseline']['updates_applied']}->"
            f"{row['certified']['updates_applied']}",
            row["replay_reduction"],
        )

    verdict_table = Table(
        "E19: certified airline pair verdicts (static+sampling minimum)",
        ["pair", "certified"],
    )
    for key in sorted(verdicts):
        verdict_table.add(key, verdicts[key])

    payload = {
        "experiment": "E19",
        "smoke": BENCH_SMOKE,
        "pair_verdicts": verdicts,
        "cells": cells,
        "smoke_baseline": smoke,
    }
    return (table, verdict_table), payload


def test_e19_certify(benchmark):
    tables, payload = run_once(benchmark, _experiment)
    save_tables("E19_certify", list(tables))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_certify.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    by_regime = {row["regime"]: row for row in payload["cells"]}

    # equivalence: the skip never changes the fold.
    assert all(row["states_agree"] for row in payload["cells"])

    # payoff: certified hits with a replay reduction in the
    # out-of-order regimes.
    for regime in OUT_OF_ORDER:
        row = by_regime[regime]
        assert row["certified"]["certified_hits"] > 0, regime
        assert row["replay_reduction"] > 0, regime
        assert (
            row["certified"]["undo_redo_merges"]
            <= row["baseline"]["undo_redo_merges"]
        ), regime

    # certificate shape: the paper's commutation structure.
    verdicts = payload["pair_verdicts"]
    assert verdicts["cancel|cancel"] == "always"
    assert verdicts["cancel|request"] == "disjoint"
    assert verdicts["move_down|move_up"] == "disjoint"
    assert verdicts["request|request"] == "none"

    # the smoke baseline the CI gate replays is present and healthy.
    smoke = payload["smoke_baseline"]
    assert smoke["certified_hits"] > 0
    assert all(row["states_agree"] for row in smoke["cells"])
