"""E2 — invariant overbooking bound versus k (Corollaries 6 and 8).

Sweeps the information deficit k under the adversarial "recent" drop
regime (each transaction misses its k most recent predecessors) and a
random-drop regime, and reports the worst overbooking cost over all
reachable states against the paper's 900k bound.  The claims checked:

* the bound holds for every run (Corollary 8);
* k = 0 (serializable regime) gives zero overbooking;
* the bound is *achievable* under divergent views: the random regime
  realizes a nonzero fraction of 900k.

A finding worth the table row: the uniform-lag ("recent") regime never
overbooks at all, because every mover sees the *same* stale prefix,
selects the *same* first-waiting passenger, and duplicate move_up(P)
updates are idempotent by the Section 5.1 policy decision.  The hazard
the paper prices is *divergence* of views (partitions), not staleness per
se — replication lag alone is benign for overbooking.
"""

from common import run_once, save_tables

from repro.apps.airline.generator import random_airline_execution
from repro.apps.airline.theorems import corollary6_overbooking, corollary8
from repro.harness import Table

CAPACITY = 10
N_TRANSACTIONS = 240
SEEDS = range(5)
KS = (0, 1, 2, 4, 8)


def _experiment():
    table = Table(
        "E2: max overbooking cost vs k (capacity 10, 240 txns, 5 seeds)",
        ["k", "drop regime", "bound 900k", "worst cost", "holds",
         "per-step Cor6 holds"],
    )
    rows = []
    for k in KS:
        for drop in ("recent", "random"):
            worst = 0.0
            all_hold = True
            per_step = True
            for seed in SEEDS:
                e = random_airline_execution(
                    seed=seed * 101 + k,
                    capacity=CAPACITY,
                    n_transactions=N_TRANSACTIONS,
                    k=k,
                    drop=drop,
                    move_up_weight=4.0,
                )
                report = corollary8(e, k, CAPACITY)
                all_hold &= bool(report.holds and report.hypothesis_holds)
                worst = max(worst, report.details["max_overbooking_cost"])
                per_step &= all(
                    corollary6_overbooking(e, i, k, CAPACITY).holds
                    for i in e.indices
                )
            table.add(k, drop, 900 * k, worst, all_hold, per_step)
            rows.append((k, drop, worst, all_hold, per_step))
    return table, rows


def test_e2_overbooking_bound(benchmark):
    table, rows = run_once(benchmark, _experiment)
    save_tables("E2_overbooking_k", [table])
    for k, drop, worst, holds, per_step in rows:
        assert holds, f"Corollary 8 failed at k={k} ({drop})"
        assert per_step, f"Corollary 6 failed at k={k} ({drop})"
        assert worst <= 900 * k
        if k == 0:
            assert worst == 0
    realized = {
        (k, drop): worst for k, drop, worst, _, _ in rows
    }
    # divergent views realize a nonzero fraction of the bound...
    assert realized[(2, "random")] > 0
    # ...while uniform lag is benign: same stale view -> same chosen
    # passenger -> idempotent duplicate move_ups (Section 5.1 policy).
    assert all(realized[(k, "recent")] == 0 for k in KS)
