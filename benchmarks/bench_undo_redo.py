"""E11 — undo/redo merge cost (Sections 1.2, 3.3; [BK], [SKS]).

SHARD's only inter-node concurrency control is undo/redo: replicas insert
arriving updates into timestamp order and recompute the suffix.  This
bench runs identical workloads (decisions and messages are byte-identical
across engines) and compares the number of update applications performed
by:

* the naive engine (recompute the full log on every insert — the spec);
* the suffix engine ([BK]'s optimization: work ∝ how far out of order
  the message was);
* the checkpoint engine ([SKS]'s storage/recompute tradeoff).

Claims: all three agree on every state (mutual consistency), the suffix
engine does dramatically less work than naive, and out-of-order pressure
(delay spread, partitions) increases redo work.
"""

from common import run_once, save_tables

from repro.apps.airline.simulation import AirlineScenario, run_airline_scenario
from repro.harness import Table
from repro.network import PartitionSchedule, UniformDelay
from repro.shard import checkpoint_factory, naive_factory, suffix_factory

CAPACITY = 10
ENGINES = (
    ("naive", naive_factory),
    ("suffix", suffix_factory),
    ("checkpoint-16", checkpoint_factory(16)),
)
REGIMES = (
    ("in-order-ish (delay 0.1-0.3)", UniformDelay(0.1, 0.3), None),
    ("jittery (delay 0.1-5.0)", UniformDelay(0.1, 5.0), None),
    (
        "partitioned 30s",
        UniformDelay(0.1, 0.3),
        PartitionSchedule.split(10, 40, [0], [1, 2]),
    ),
)


def _run(factory, delay, partitions):
    return run_airline_scenario(
        AirlineScenario(
            capacity=CAPACITY,
            n_nodes=3,
            duration=60,
            seed=5,
            request_rate=2.0,
            delay=delay,
            partitions=partitions,
            merge_factory=factory,
        )
    )


def _experiment():
    table = Table(
        "E11: updates applied during merging, by engine and regime",
        ["regime", "engine", "log length", "updates applied",
         "x naive", "snapshots held"],
    )
    work = {}
    states = {}
    for regime_name, delay, partitions in REGIMES:
        naive_total = None
        for engine_name, factory in ENGINES:
            run = _run(factory, delay, partitions)
            total = sum(
                node.merge.stats.updates_applied
                for node in run.cluster.nodes
            )
            snapshots = max(
                node.merge.stats.snapshots_held
                for node in run.cluster.nodes
            )
            log_len = len(run.execution)
            if engine_name == "naive":
                naive_total = total
            ratio = total / naive_total if naive_total else 0.0
            table.add(regime_name, engine_name, log_len, total,
                      round(ratio, 3), snapshots)
            work[(regime_name, engine_name)] = total
            states[(regime_name, engine_name)] = run.final_state
    return table, (work, states)


def test_e11_undo_redo(benchmark):
    table, (work, states) = run_once(benchmark, _experiment)
    save_tables("E11_undo_redo", [table])
    for regime_name, _, _ in REGIMES:
        # all engines compute identical final states.
        reference = states[(regime_name, "naive")]
        for engine_name, _ in ENGINES:
            assert states[(regime_name, engine_name)] == reference
        # the suffix engine beats naive recomputation by a wide margin.
        assert work[(regime_name, "suffix")] < work[(regime_name, "naive")] / 5
        # checkpointing sits in between (or better than naive, at least).
        assert work[(regime_name, "checkpoint-16")] < work[(regime_name, "naive")]
    # out-of-order pressure increases suffix redo work.
    assert (
        work[("jittery (delay 0.1-5.0)", "suffix")]
        > work[("in-order-ish (delay 0.1-0.3)", "suffix")]
    )
