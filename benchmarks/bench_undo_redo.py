"""E11 — undo/redo merge cost (Sections 1.2, 3.3; [BK], [SKS]).

SHARD's only inter-node concurrency control is undo/redo: replicas insert
arriving updates into timestamp order and recompute the suffix.  This
bench runs identical workloads (decisions and messages are byte-identical
across engines) and compares the number of update applications performed
by:

* the naive engine (recompute the full log on every insert — the spec);
* the suffix engine ([BK]'s optimization: work ∝ how far out of order
  the message was);
* the checkpoint engine ([SKS]'s storage/recompute tradeoff);
* the replica layer's bounded-memory policies (geometric ladder,
  tail window, adaptive window), which keep suffix-like redo cost at
  O(interval) snapshots instead of one snapshot per log position.

Claims: all engines agree on every state (mutual consistency), the
suffix engine does dramatically less work than naive, out-of-order
pressure (delay spread, partitions) increases redo work, the tail-window
replica holds a bounded number of snapshots while applying no more
updates than the seed checkpoint engine, and in-order-ish traffic rides
the tail fast path for ≥ 95% of inserts.

Beyond the rendered table, the run emits machine-readable per-engine
stats (peak snapshot count, fast-path hit rate, ...) to
``benchmarks/results/BENCH_undo_redo.json``.
"""

import json
import math

from common import RESULTS_DIR, run_once, save_tables

from repro.apps.airline.simulation import AirlineScenario, run_airline_scenario
from repro.harness import Table
from repro.network import PartitionSchedule, UniformDelay
from repro.replica import (
    AdaptiveWindowPolicy,
    GeometricPolicy,
    TailWindowPolicy,
    policy_engine_factory,
)
from repro.shard import checkpoint_factory, naive_factory, suffix_factory

CAPACITY = 10
WINDOW = 16
ENGINES = (
    ("naive", naive_factory),
    ("suffix", suffix_factory),
    ("checkpoint-16", checkpoint_factory(WINDOW)),
    (
        "tail-window-16",
        policy_engine_factory(lambda: TailWindowPolicy(WINDOW)),
    ),
    ("geometric", policy_engine_factory(GeometricPolicy)),
    (
        "adaptive",
        policy_engine_factory(
            lambda: AdaptiveWindowPolicy(
                initial_window=WINDOW, min_window=4, max_window=256
            )
        ),
    ),
)
#: (name, delay, partitions, scenario overrides).  "single-writer" is the
#: paper's centralized regime: every transaction initiates at node 0, so
#: remote deliveries arrive in timestamp order — the in-order workload
#: the tail fast path is built for.
REGIMES = (
    (
        "single-writer (delay 0.005-0.02)",
        UniformDelay(0.005, 0.02),
        None,
        {"request_nodes": [0], "mover_nodes": [0]},
    ),
    ("in-order-ish (delay 0.1-0.3)", UniformDelay(0.1, 0.3), None, {}),
    ("jittery (delay 0.1-5.0)", UniformDelay(0.1, 5.0), None, {}),
    (
        "partitioned 30s",
        UniformDelay(0.1, 0.3),
        PartitionSchedule.split(10, 40, [0], [1, 2]),
        {},
    ),
)
SEQUENTIAL = REGIMES[0][0]
IN_ORDER = REGIMES[1][0]


def _run(factory, delay, partitions, overrides):
    return run_airline_scenario(
        AirlineScenario(
            capacity=CAPACITY,
            n_nodes=3,
            duration=60,
            seed=5,
            request_rate=2.0,
            delay=delay,
            partitions=partitions,
            merge_factory=factory,
            **overrides,
        )
    )


def _experiment():
    table = Table(
        "E11: updates applied during merging, by engine and regime",
        ["regime", "engine", "log length", "updates applied",
         "x naive", "peak snapshots", "fastpath %"],
    )
    rows = []
    states = {}
    for regime_name, delay, partitions, overrides in REGIMES:
        naive_total = None
        for engine_name, factory in ENGINES:
            run = _run(factory, delay, partitions, overrides)
            stats = [node.merge.stats for node in run.cluster.nodes]
            total = sum(s.updates_applied for s in stats)
            inserts = sum(s.inserts for s in stats)
            fastpath = sum(s.fastpath_hits for s in stats)
            rate = fastpath / inserts if inserts else 0.0
            peak = max(s.snapshots_held for s in stats)
            log_len = len(run.execution)
            if engine_name == "naive":
                naive_total = total
            ratio = total / naive_total if naive_total else 0.0
            table.add(regime_name, engine_name, log_len, total,
                      round(ratio, 3), peak, round(100 * rate, 1))
            rows.append({
                "regime": regime_name,
                "engine": engine_name,
                "log_length": log_len,
                "inserts": inserts,
                "updates_applied": total,
                "vs_naive": round(ratio, 4),
                "peak_snapshots": peak,
                "fastpath_hits": fastpath,
                "fastpath_rate": round(rate, 4),
                "undo_redo_merges": sum(s.undo_redo_merges for s in stats),
                "max_displacement": max(s.max_displacement for s in stats),
            })
            states[(regime_name, engine_name)] = run.final_state
    return table, (rows, states)


def test_e11_undo_redo(benchmark):
    table, (rows, states) = run_once(benchmark, _experiment)
    save_tables("E11_undo_redo", [table])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_undo_redo.json").write_text(
        json.dumps({"experiment": "E11", "window": WINDOW, "rows": rows},
                   indent=2) + "\n"
    )
    cell = {(r["regime"], r["engine"]): r for r in rows}
    work = {k: r["updates_applied"] for k, r in cell.items()}
    for regime_name, _, _, _ in REGIMES:
        # all engines compute identical final states.
        reference = states[(regime_name, "naive")]
        for engine_name, _ in ENGINES:
            assert states[(regime_name, engine_name)] == reference
        # the suffix engine beats naive recomputation by a wide margin.
        assert work[(regime_name, "suffix")] < work[(regime_name, "naive")] / 5
        # checkpointing sits in between (or better than naive, at least).
        assert work[(regime_name, "checkpoint-16")] < work[(regime_name, "naive")]
        # bounded-memory replicas: suffix-like redo cost at O(window)
        # snapshots — no worse than the seed checkpoint engine on work,
        # while the seed suffix engine holds one snapshot per position.
        bounded = cell[(regime_name, "tail-window-16")]
        budget = WINDOW + math.log2(max(bounded["log_length"], 2)) + 3
        assert bounded["peak_snapshots"] <= budget
        assert bounded["updates_applied"] <= work[(regime_name, "checkpoint-16")]
        assert (
            cell[(regime_name, "suffix")]["peak_snapshots"]
            > bounded["peak_snapshots"]
        )
    # in-order traffic rides the tail fast path almost always.
    for engine_name in ("suffix", "tail-window-16", "geometric", "adaptive"):
        assert cell[(SEQUENTIAL, engine_name)]["fastpath_rate"] >= 0.95
    # out-of-order pressure increases suffix redo work.
    assert (
        work[("jittery (delay 0.1-5.0)", "suffix")]
        > work[(IN_ORDER, "suffix")]
    )
