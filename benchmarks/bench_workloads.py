"""E20 — the production-workload leaderboard at million-key scale.

Every application category runs a committed :class:`WorkloadSpec` —
Zipfian key skew over a **10**6-key universe**, diurnal and flash-crowd
load shapes — through the full replicated stack, and the results roll
up into one throughput leaderboard.  Three measurable claims:

* **worker independence** — the leaderboard payload is byte-identical
  at ``workers=1`` and ``workers=N``; parallel fan-out changes
  wall-clock only, never results;
* **million-key scale is free** — rejection-inversion Zipf sampling is
  O(1) per draw with no per-key setup, so the sustained wall ops/sec
  (the headline number) is measured with >= 1M distinct simulated
  client keys per category;
* **convergence under skew** — every workload quiesces to mutual
  consistency, and the per-category merge economics (undo/redo work,
  cost-cache and certified-hit rates, wire bytes, convergence lag) are
  pinned exactly by the ``smoke_baseline`` section the CI gate
  (``python -m repro.perf.gate --workloads``) re-runs.

The run writes ``BENCH_workloads.json`` (leaderboard + profile +
smoke baseline) and the rendered ``E20_workloads.txt`` table.
"""

import json
import os

from common import RESULTS_DIR, run_once, save_tables

from repro.harness import Table
from repro.perf import PerfTimer
from repro.perf.gate import usable_cores, workloads_smoke_baseline
from repro.workloads.leaderboard import (
    build_leaderboard,
    build_profile,
    leaderboard_json,
    render_text,
)
from repro.workloads.runners import run_parallel_workloads
from repro.workloads.specs import DEFAULT_SPECS, MILLION, SMOKE_SPECS

BENCH_SMOKE = bool(os.environ.get("BENCH_SMOKE"))
SPECS = SMOKE_SPECS if BENCH_SMOKE else DEFAULT_SPECS
PARALLEL_WORKERS = 2 if BENCH_SMOKE else 8

#: the profile-driven interning decision (satellite of the workloads
#: PR): recorded here so the leaderboard notes travel with the numbers.
INTERNING_NOTES = (
    "profiled run_workload with cProfile: >90% of wall time is gossip "
    "flood + merge, not key synthesis; replica/engine record ids are "
    "plain int txids (nothing to intern). Key-name interning in "
    "ZipfKeys is kept as a memory measure (one shared string per "
    "distinct hot key across the log and every replica state); a "
    "200k-draw microbench put memo+intern at ~62ms vs ~37ms for fresh "
    "f-strings, so it is not a throughput lever and the engine was "
    "left unchanged."
)


def _experiment():
    cores = usable_cores()
    timer = PerfTimer()

    with timer.span("serial"):
        rows_serial, elapsed = run_parallel_workloads(SPECS, workers=1)
    with timer.span("parallel"):
        rows_parallel, _ = run_parallel_workloads(
            SPECS, workers=PARALLEL_WORKERS
        )
    serial_s = timer.timings.total("serial")
    parallel_s = timer.timings.total("parallel")

    board = build_leaderboard(rows_serial)
    board_parallel = build_leaderboard(rows_parallel)
    profile = build_profile(rows_serial, elapsed, workers=1)
    smoke = workloads_smoke_baseline(workers=1)

    table = Table(
        f"E20: workload leaderboard ({len(SPECS)} workloads, "
        f"{MILLION} keys, {cores} core(s))",
        ["measure", "value"],
    )
    table.add("workloads", len(SPECS))
    table.add("categories", len(board["categories"]))
    table.add("key universe (per workload)", MILLION)
    table.add("total events", board["total_events"])
    table.add("payloads identical (1 vs "
              f"{PARALLEL_WORKERS} workers)",
              board == board_parallel)
    table.add("leaderboard fingerprint", board["fingerprint"])
    table.add("all mutually consistent", board["consistent"])
    table.add("sustained wall ops/sec (pooled)",
              profile["wall_ops_per_sec"])
    table.add("serial wall-clock (s)", round(serial_s, 2))
    table.add("parallel wall-clock (s)", round(parallel_s, 2))
    for row in board["rows"]:
        name = row["workload"]
        wall = profile["workloads"][name]["wall_ops_per_sec"]
        table.add(f"{name} wall ops/sec", wall)

    payload = {
        "experiment": "E20",
        "smoke": BENCH_SMOKE,
        "hardware": {"cores": cores},
        "key_universe": MILLION,
        "leaderboard": board,
        "profile": profile,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "identical_across_workers": board == board_parallel,
        "notes": {"interning": INTERNING_NOTES},
        "phase_timings": timer.as_dict(),
        "smoke_baseline": smoke,
    }
    return table, (board, board_parallel, payload)


def test_e20_workloads(benchmark):
    table, (board, board_parallel, payload) = run_once(
        benchmark, _experiment
    )
    leaderboard_text = render_text(
        payload["leaderboard"], payload["profile"]
    )
    save_tables("E20_workloads", [table])
    with open(RESULTS_DIR / "E20_workloads.txt", "a") as fh:
        fh.write("\n" + leaderboard_text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_workloads.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # worker independence: byte-identical leaderboards.
    assert leaderboard_json(board) == leaderboard_json(board_parallel)
    assert payload["identical_across_workers"]

    # every category converges to mutual consistency under skew.
    assert board["consistent"]
    assert len(board["categories"]) == 6

    # the headline is genuinely measured at million-key scale.
    assert all(
        row["spec"]["universe"] >= MILLION for row in board["rows"]
    )
    assert payload["profile"]["wall_ops_per_sec"] > 0

    # the smoke baseline section is what the CI gate re-runs; it must
    # itself be consistent and cover every category.
    smoke = payload["smoke_baseline"]
    assert smoke["consistent"]
    assert smoke["categories"] == board["categories"]
