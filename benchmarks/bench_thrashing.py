"""E8 — thrashing (the Section 3.1 danger).

"If a MOVE_UP transaction does not see a previous request and
corresponding MOVE_UP ... this kind of thrashing is very undesirable, not
just because of its obvious inefficiency, but because of the external
effects of the conflicting transactions."

This bench measures, from the external-action ledger, how often the same
passenger is told "you have a seat" / "you lost it" repeatedly, as a
function of partition duration and mover placement.  Claims checked:

* no partition, decentralized movers: essentially no reversals;
* reversals grow with partition duration under decentralized movers;
* centralizing the movers suppresses thrashing even under partitions.
"""

from common import run_once, save_tables

from repro.analysis import thrash_report
from repro.apps.airline.simulation import AirlineScenario, run_airline_scenario
from repro.harness import Table
from repro.network import PartitionSchedule

CAPACITY = 8
SEEDS = range(3)
DURATIONS = (0, 20, 40, 60)


def _run(seed, partition_duration, mover_nodes):
    partitions = (
        PartitionSchedule.split(10, 10 + partition_duration, [0], [1, 2])
        if partition_duration > 0
        else None
    )
    return run_airline_scenario(
        AirlineScenario(
            capacity=CAPACITY,
            n_nodes=3,
            duration=90,
            seed=seed,
            request_rate=1.2,
            cancel_fraction=0.2,
            partitions=partitions,
            mover_nodes=mover_nodes,
            mover_interval=1.5,
        )
    )


def _experiment():
    table = Table(
        "E8: notification reversals vs partition duration (3 seeds each)",
        ["partition (s)", "movers", "notifications", "total reversals",
         "thrashed passengers", "worst passenger"],
    )
    curve = {}
    for mover_nodes, label in ((None, "decentralized"), ([0], "centralized")):
        for duration in DURATIONS:
            notifications = reversals = thrashed = worst = 0
            for seed in SEEDS:
                run = _run(seed, duration, mover_nodes)
                report = thrash_report(run.ledger)
                notifications += report.notifications
                reversals += report.total_reversals
                thrashed += report.thrashed_entities
                worst = max(worst, report.worst_entity_reversals)
            table.add(duration, label, notifications, reversals, thrashed,
                      worst)
            curve[(label, duration)] = reversals
    return table, curve


def test_e8_thrashing(benchmark):
    table, curve = run_once(benchmark, _experiment)
    save_tables("E8_thrashing", [table])
    # thrashing grows with partition duration under decentralized movers.
    assert curve[("decentralized", 60)] > curve[("decentralized", 0)]
    # centralization suppresses it.
    assert curve[("centralized", 60)] <= curve[("decentralized", 60)]
