"""E13 — mixed-mode operation and the distributed agent (Sections 3.2, 6).

Section 6 asks for "an application system in which certain critical
transactions run serializably, while the others run in a highly
available manner".  This bench compares four mover policies on the same
partitioned airline workload:

* **decentralized** — every node runs its own movers (fully available,
  overbooking-prone);
* **token agent, block** — movers serialized through a migrating token;
  unreachable token ⇒ rejection (Theorem 22's guarantee, availability
  price);
* **token agent, local** — same, but falls back to local execution when
  the token is unreachable (availability restored, guarantee forfeited);
* **synchronized** — every mover first pulls all nodes' knowledge
  (near-complete prefixes; rejected during partitions).

And, separately, banking audits in both modes: available audits report
stale totals with error bounded by what their deficit can hide;
synchronized audits are exact but unavailable during partitions.
"""

import random

from common import run_once, save_tables

from repro.apps.airline import (
    AirlineState,
    MoveUp,
    Request,
    make_airline_application,
)
from repro.apps.banking import (
    AUDIT_REPORT,
    Audit,
    Deposit,
    INITIAL_BANK_STATE,
    Withdraw,
)
from repro.harness import Table
from repro.network import PartitionSchedule
from repro.shard import ClusterConfig, ShardCluster
from repro.sim.metrics import mean

CAPACITY = 6
DURATION = 80.0
PARTITION = PartitionSchedule.split(10, 60, [0], [1, 2])


def _drive_movers(policy, seed):
    """Identical request schedule; movers dispatched per policy."""
    cluster = ShardCluster(
        AirlineState(),
        ClusterConfig(n_nodes=3, seed=seed, partitions=PARTITION),
    )
    agent = None
    if policy in ("token-block", "token-local"):
        agent = cluster.create_agent(
            home=0,
            policy="block" if policy == "token-block" else "local",
            timeout=5.0,
        )
    rng = random.Random(seed)
    t, person = 0.0, 0
    movers_requested = 0
    while t < DURATION:
        t += rng.expovariate(1.0)
        person += 1
        cluster.submit(rng.randrange(3), Request(f"P{person}"), at=t)
        if rng.random() < 0.6:
            node = rng.randrange(3)
            at = t + 0.1
            movers_requested += 1
            if policy == "decentralized":
                cluster.submit(node, MoveUp(CAPACITY), at=at)
            elif policy in ("token-block", "token-local"):
                cluster.sim.schedule_at(
                    at, lambda n=node: agent.submit(n, MoveUp(CAPACITY))
                )
            else:  # synchronized
                cluster.sim.schedule_at(
                    at,
                    lambda n=node: cluster.submit_synchronized(
                        n, MoveUp(CAPACITY), timeout=5.0
                    ),
                )
    cluster.run(until=DURATION + 20)
    cluster.quiesce()
    e = cluster.extract_execution()
    app = make_airline_application(capacity=CAPACITY)
    worst = max(app.cost(s, "overbooking") for s in e.actual_states)
    if policy == "decentralized":
        served, latency = movers_requested, 0.0
    elif agent is not None:
        served = agent.stats.served_with_token + agent.stats.served_locally
        latency = mean(agent.stats.latencies)
    else:
        served = cluster.sync.stats.served
        latency = mean(cluster.sync.stats.latencies)
    return served / movers_requested, latency, worst


def _audit_modes(seed):
    """Available vs synchronized audits on a partitioned bank."""
    cluster = ShardCluster(
        INITIAL_BANK_STATE,
        ClusterConfig(n_nodes=3, seed=seed, partitions=PARTITION),
    )
    rng = random.Random(seed)
    t = 0.0
    for account in ("alice", "bob"):
        cluster.submit(0, Deposit(account, 200), at=0.0)
    while t < DURATION:
        t += rng.expovariate(1.5)
        account = rng.choice(("alice", "bob"))
        if rng.random() < 0.5:
            cluster.submit(rng.randrange(3), Deposit(account, rng.randint(1, 9)), at=t)
        else:
            cluster.submit(rng.randrange(3), Withdraw(account, rng.randint(1, 9)), at=t)
    audit_times = [20.0, 40.0, 70.0]
    for at in audit_times:
        cluster.submit(1, Audit(), at=at)  # available mode
        cluster.sim.schedule_at(
            at, lambda: cluster.submit_synchronized(1, Audit(), timeout=5.0)
        )
    cluster.run(until=DURATION + 20)
    cluster.quiesce()
    e = cluster.extract_execution()
    # audit accuracy: reported vs the actual total at that point.
    errors_available = []
    sync_exact = True
    audit_count = 0
    for i in e.indices:
        if e.transactions[i].name != "AUDIT":
            continue
        audit_count += 1
        reported = e.external_actions[i][0].payload[0]
        actual = e.actual_before(i).total
        apparent = e.apparent_before[i].total
        assert reported == apparent  # audits report what they saw
        if e.deficit(i) == 0:
            sync_exact &= reported == actual
        else:
            errors_available.append(abs(reported - actual))
    return (
        cluster.sync.stats.availability,
        mean(errors_available),
        sync_exact,
        audit_count,
    )


def _experiment():
    t1 = Table(
        "E13a: mover policies under a 50s partition (capacity 6)",
        ["policy", "mover availability", "mean mover latency",
         "max overbooking ($)"],
    )
    results = {}
    for policy in ("decentralized", "token-block", "token-local",
                   "synchronized"):
        avail, latency, worst = _drive_movers(policy, seed=2)
        t1.add(policy, round(avail, 3), round(latency, 2), worst)
        results[policy] = (avail, worst)

    t2 = Table(
        "E13b: banking audits, available vs synchronized mode",
        ["sync audit availability", "mean error of available audits ($)",
         "synchronized audits exact"],
    )
    sync_avail, avail_error, sync_exact, audit_count = _audit_modes(seed=22)
    t2.add(round(sync_avail, 3), round(avail_error, 2), sync_exact)

    return (t1, t2), (results, sync_avail, sync_exact)


def test_e13_mixed_mode(benchmark):
    tables, (results, sync_avail, sync_exact) = run_once(benchmark, _experiment)
    save_tables("E13_mixed_mode", list(tables))
    # decentralized: fully available, overbooks.
    assert results["decentralized"][0] == 1.0
    assert results["decentralized"][1] > 0
    # token-block: never overbooks, loses availability.
    assert results["token-block"][1] == 0
    assert results["token-block"][0] < 1.0
    # token-local: available again, guarantee gone (may or may not
    # overbook on this seed; availability is the claim).
    assert results["token-local"][0] == 1.0
    # synchronized movers: never overbook, lose availability.
    assert results["synchronized"][1] == 0
    assert results["synchronized"][0] < 1.0
    # audits: synchronized ones are exact but partially available.
    assert sync_exact
    assert sync_avail < 1.0
