"""E6 — centralization prevents overbooking (Theorems 22, 23).

Runs the same partitioned workload on the simulated SHARD cluster under
two mover-placement policies and checks:

* decentralized movers (every node runs its own MOVE_UP/MOVE_DOWN
  sweeps): overbooking occurs during partitions, bounded by 900k at the
  measured k (Corollary 8);
* centralized movers (a single agent node): Theorem 22's hypotheses hold
  on the extracted execution and overbooking is identically zero — even
  though the agent's information is stale;
* the Section 5.4 counterexample shows the per-person/single-request
  hypothesis is necessary, not pedantry.
"""

from common import run_once, save_tables

from repro.apps.airline import make_airline_application
from repro.apps.airline.simulation import AirlineScenario, run_airline_scenario
from repro.apps.airline.theorems import theorem22, theorem23
from repro.apps.airline.worked_examples import section_5_4_counterexample
from repro.core import group_by_family, is_centralized, max_deficit
from repro.harness import Table
from repro.network import PartitionSchedule

CAPACITY = 12
SEEDS = range(4)


def _run(seed, mover_nodes, cancel_fraction=0.15):
    partitions = PartitionSchedule.split(20, 70, [0], [1, 2])
    return run_airline_scenario(
        AirlineScenario(
            capacity=CAPACITY,
            n_nodes=3,
            duration=100,
            seed=seed,
            partitions=partitions,
            mover_nodes=mover_nodes,
            cancel_fraction=cancel_fraction,
        )
    )


def _experiment():
    app = make_airline_application(capacity=CAPACITY)
    table = Table(
        "E6: overbooking under a 50s partition, by mover placement",
        ["policy", "seed", "txns", "max k", "max overbooking ($)",
         "Thm22 hypotheses", "Thm22/23 hold"],
    )
    decentral_worst = 0.0
    central_worst = 0.0
    all_hold = True
    for seed in SEEDS:
        run = _run(seed, mover_nodes=None)
        e = run.execution
        worst = max(app.cost(s, "overbooking") for s in e.actual_states)
        decentral_worst = max(decentral_worst, worst)
        r22 = theorem22(e, CAPACITY)
        all_hold &= bool(r22.holds)
        table.add("decentralized", seed, len(e), max_deficit(e), worst,
                  r22.hypothesis_holds, r22.holds)
    hyps_hold = True
    for seed in SEEDS:
        # no cancels here: a CANCEL(P) initiated at a partitioned-away
        # node would break per-person centralization, making Theorem 22
        # vacuous (though the conclusion still holds empirically).
        run = _run(seed, mover_nodes=[0], cancel_fraction=0.0)
        e = run.execution
        worst = max(app.cost(s, "overbooking") for s in e.actual_states)
        central_worst = max(central_worst, worst)
        r22 = theorem22(e, CAPACITY)
        r23 = theorem23(e, CAPACITY)
        all_hold &= bool(r22.holds and r23.holds)
        hyps_hold &= bool(r22.hypothesis_holds and r23.hypothesis_holds)
        table.add("centralized movers", seed, len(e), max_deficit(e), worst,
                  r22.hypothesis_holds, r22.holds and r23.holds)

    e54 = section_5_4_counterexample(capacity=CAPACITY)
    r22 = theorem22(e54, CAPACITY)
    worst54 = max(app.cost(s, "overbooking") for s in e54.actual_states)
    table.add("5.4 counterexample", "-", len(e54), "-", worst54,
              r22.hypothesis_holds, r22.holds)

    return table, (
        decentral_worst, central_worst, all_hold, hyps_hold, r22, worst54,
    )


def test_e6_centralization(benchmark):
    table, payload = run_once(benchmark, _experiment)
    save_tables("E6_centralization", [table])
    (decentral_worst, central_worst, all_hold, hyps_hold, r54,
     worst54) = payload
    assert all_hold
    # the centralized runs satisfy Theorems 22/23 non-vacuously.
    assert hyps_hold
    # decentralized movers overbook under the partition...
    assert decentral_worst > 0
    # ...centralized movers never do (Theorem 22).
    assert central_worst == 0
    # the counterexample: movers centralized + transitive, yet overbooked
    # (its duplicated requests defeat the remaining hypotheses).
    assert not r54.hypothesis_holds
    assert worst54 > 0
