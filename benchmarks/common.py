"""Shared helpers for the benchmark/experiment suite.

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index (E1-E12).  Conventions:

* the experiment body is timed once via ``benchmark.pedantic(...,
  rounds=1)`` — these are simulation experiments, not microbenchmarks;
* every experiment renders one or more :class:`repro.harness.Table`s,
  prints them (visible with ``pytest -s``) and saves them under
  ``benchmarks/results/`` so EXPERIMENTS.md can quote them;
* every experiment *asserts* the paper's qualitative claim, so the bench
  suite doubles as an end-to-end acceptance test of the reproduction.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.harness import Table

RESULTS_DIR = Path(__file__).parent / "results"


def save_tables(name: str, tables: Sequence[Table]) -> str:
    """Render, persist and print an experiment's tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n\n".join(t.render() for t in tables)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    return text


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
