"""E9 — availability versus correctness (the Section 1.1 motivation).

Runs the *same* airline workload schedule through:

* the SHARD cluster — every transaction is initiated locally and
  immediately (100% served, zero submission latency), at the price of a
  bounded integrity cost during partitions;
* the primary-copy serializable baseline — integrity is perfect, but
  clients partitioned away from the primary are rejected, and remote
  clients pay a round trip;
* a majority-quorum serializable baseline — integrity perfect, clients
  on the majority side of a partition stay available, every client pays
  a quorum round trip.

Sweeps the partition duration and reports served fraction, latency and
the realized integrity costs — the quantified version of the paper's
"penalty is paid for this extra availability".
"""

import json
import os
import random

from common import RESULTS_DIR, run_once, save_tables

from repro.apps.airline import (
    AirlineState,
    MoveUp,
    Request,
    make_airline_application,
)
from repro.apps.airline.simulation import AirlineScenario, run_airline_scenario
from repro.harness import Table
from repro.network import BroadcastConfig, PartitionSchedule, UniformDelay
from repro.serializable import PrimaryCopySystem, QuorumSystem
from repro.sim.metrics import Summary, mean

CAPACITY = 10
DURATION = 90.0
DURATIONS = (0, 20, 40, 70)
N_NODES = 3

#: BENCH_SMOKE=1 shrinks the gossip A/B experiment for the CI smoke
#: step (the bandwidth-accounting path still runs end to end).
BENCH_SMOKE = bool(os.environ.get("BENCH_SMOKE"))
GOSSIP_DURATION = 25.0 if BENCH_SMOKE else DURATION
GOSSIP_PARTITIONS = (0,) if BENCH_SMOKE else (0, 40)


def _partitions(partition_duration):
    if partition_duration == 0:
        return None
    return PartitionSchedule.split(
        10, 10 + partition_duration, [0], [1, 2]
    )


def _schedule(seed):
    """A deterministic submission schedule shared by both systems."""
    rng = random.Random(seed)
    schedule = []
    t = 0.0
    person = 0
    while t < DURATION:
        t += rng.expovariate(1.0)
        node = rng.randrange(N_NODES)
        person += 1
        schedule.append((t, node, Request(f"P{person}")))
        if rng.random() < 0.5:
            schedule.append((t + 0.1, node, MoveUp(CAPACITY)))
    return schedule


def _run_shard(seed, partition_duration):
    run = run_airline_scenario(
        AirlineScenario(
            capacity=CAPACITY,
            n_nodes=N_NODES,
            duration=DURATION,
            seed=seed,
            partitions=_partitions(partition_duration),
        )
    )
    app = make_airline_application(capacity=CAPACITY)
    e = run.execution
    worst = max(app.cost(s) for s in e.actual_states)
    served = len(e)
    submitted = run.requests_submitted + run.movers_submitted
    return served / submitted if submitted else 1.0, 0.0, worst


def _run_primary(seed, partition_duration):
    system = PrimaryCopySystem(
        AirlineState(),
        n_nodes=N_NODES,
        delay=UniformDelay(0.2, 1.0),
        partitions=_partitions(partition_duration),
        seed=seed,
    )
    for at, node, txn in _schedule(seed):
        system.submit(node, txn, at=at)
    system.run()
    app = make_airline_application(capacity=CAPACITY)
    return (
        system.stats.availability,
        mean(system.latencies()),
        app.cost(system.state),
    )


def _run_quorum(seed, partition_duration):
    system = QuorumSystem(
        AirlineState(),
        n_nodes=N_NODES,
        delay=UniformDelay(0.2, 1.0),
        partitions=_partitions(partition_duration),
        seed=seed,
    )
    for at, node, txn in _schedule(seed):
        system.submit(node, txn, at=at)
    system.run()
    app = make_airline_application(capacity=CAPACITY)
    return (
        system.stats.availability,
        mean(system.latencies),
        app.cost(system.state),
    )


def _experiment():
    table = Table(
        "E9: availability vs integrity, same workload, partition sweep",
        ["partition (s)", "system", "served fraction", "mean latency",
         "max total cost ($)"],
    )
    shard_avail = {}
    primary_avail = {}
    quorum_avail = {}
    shard_cost = {}
    for duration in DURATIONS:
        served, latency, cost = _run_shard(31, duration)
        shard_avail[duration] = served
        shard_cost[duration] = cost
        table.add(duration, "SHARD", round(served, 3), latency, cost)
        served, latency, cost = _run_primary(31, duration)
        primary_avail[duration] = served
        table.add(duration, "primary-copy", round(served, 3),
                  round(latency, 2), cost)
        served, latency, cost = _run_quorum(31, duration)
        quorum_avail[duration] = served
        table.add(duration, "majority-quorum", round(served, 3),
                  round(latency, 2), cost)
    return table, (shard_avail, primary_avail, quorum_avail, shard_cost)


def _run_gossip(mode, partition_duration):
    run = run_airline_scenario(
        AirlineScenario(
            capacity=CAPACITY,
            n_nodes=N_NODES,
            duration=GOSSIP_DURATION,
            seed=31,
            partitions=_partitions(partition_duration),
            broadcast=BroadcastConfig(mode=mode),
        )
    )
    cluster = run.cluster
    assert cluster.converged()
    assert cluster.mutually_consistent()
    stats = cluster.broadcast.stats
    delays = Summary.of(stats.delivery_delays)
    return {
        "published": stats.published,
        "items_carried": stats.items_carried,
        "wire": stats.wire.as_dict(),
        "delta": {
            "syns": stats.delta.syns,
            "skips": stats.delta.skips,
            "delta_records": stats.delta.delta_records,
            "timeouts": stats.delta.timeouts,
            "repair_pulls": stats.delta.repair_pulls,
        },
        "delivery_delay": {
            "count": delays.count,
            "mean": round(delays.mean, 3),
            "p50": round(delays.p50, 3),
            "p95": round(delays.p95, 3),
            "max": round(delays.max, 3),
        },
    }


def _gossip_experiment():
    """E9b: the same dissemination workload under full-set vs digest
    anti-entropy — delivered delay versus bytes on the wire."""
    table = Table(
        "E9b: full-set vs digest gossip — bandwidth and delivery delay",
        ["partition (s)", "mode", "item copies", "wire bytes",
         "delay p50", "delay p95", "copies ratio"],
    )
    results = {"full": {}, "digest": {}}
    for duration in GOSSIP_PARTITIONS:
        for mode in ("full", "digest"):
            results[mode][duration] = _run_gossip(mode, duration)
        full = results["full"][duration]
        digest = results["digest"][duration]
        ratio = (
            full["items_carried"] / digest["items_carried"]
            if digest["items_carried"]
            else float("inf")
        )
        for mode in ("full", "digest"):
            r = results[mode][duration]
            table.add(
                duration, mode, r["items_carried"], r["wire"]["bytes"],
                r["delivery_delay"]["p50"], r["delivery_delay"]["p95"],
                round(ratio, 1) if mode == "digest" else "",
            )
    return table, results


def test_e9b_gossip_bandwidth(benchmark):
    table, results = run_once(benchmark, _gossip_experiment)
    save_tables("E9b_gossip_bandwidth", [table])
    payload = {
        "workload": {
            "scenario": "airline E9 default",
            "duration": GOSSIP_DURATION,
            "n_nodes": N_NODES,
            "seed": 31,
            "partition_durations": list(GOSSIP_PARTITIONS),
            "smoke": BENCH_SMOKE,
        },
        "modes": results,
        "items_carried_ratio": {
            str(d): round(
                results["full"][d]["items_carried"]
                / results["digest"][d]["items_carried"], 2
            )
            for d in GOSSIP_PARTITIONS
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_gossip.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # the tentpole acceptance criterion: on the default workload, digest
    # mode ships at least 5x fewer item copies than full-set
    # dissemination while every run converges to mutual consistency
    # (asserted inside _run_gossip for each run above).
    for duration in GOSSIP_PARTITIONS:
        full = results["full"][duration]["items_carried"]
        digest = results["digest"][duration]["items_carried"]
        assert full >= 5 * digest, (duration, full, digest)


def test_e9_availability(benchmark):
    table, (shard_avail, primary_avail, quorum_avail, shard_cost) = run_once(
        benchmark, _experiment
    )
    save_tables("E9_availability", [table])
    # the quorum baseline sits between primary-copy and SHARD on the
    # availability axis (clients on the majority side keep working).
    for duration in DURATIONS:
        assert primary_avail[duration] <= quorum_avail[duration] + 1e-9
        assert quorum_avail[duration] <= 1.0
    assert quorum_avail[70] < 1.0
    # SHARD serves everything, always.
    assert all(v == 1.0 for v in shard_avail.values())
    # the primary-copy baseline loses availability under partitions,
    # monotonically in their duration.
    assert primary_avail[0] == 1.0
    assert primary_avail[70] < primary_avail[20] < 1.0
    # and SHARD's price: a bounded, nonzero integrity cost shows up only
    # when partitions force stale decisions.
    assert shard_cost[0] <= shard_cost[70]
