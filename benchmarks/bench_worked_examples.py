"""E1 — the paper's worked example executions, reproduced verbatim.

Regenerates:

* the Section 3.1 non-serializable execution at capacity 100: the
  transiently overbooked state s_204 (cost $1800) and the final assigned
  list P2..P100, P102 with P101 waitlisted;
* the Section 5.4 counterexample: transitive + centralized MOVE_UPs yet
  $900 of overbooking (the per-person hypothesis of Theorem 22 is
  necessary);
* the Section 5.5 priority inversion and its timestamped repair.
"""

from common import run_once, save_tables

from repro.apps.airline import make_airline_application, precedes
from repro.apps.airline.timestamped import ts_precedes
from repro.apps.airline.worked_examples import (
    section_3_1_execution,
    section_3_1_overbooked_index,
    section_5_4_counterexample,
    section_5_5_priority_inversion,
    section_5_5_with_timestamps,
)
from repro.core import group_by_family, is_centralized, is_transitive
from repro.harness import Table


def _experiment():
    app = make_airline_application(capacity=100)

    e31 = section_3_1_execution(capacity=100)
    s204 = e31.actual_states[section_3_1_overbooked_index(100)]
    final = e31.final_state

    t1 = Table(
        "E1a: Section 3.1 execution (capacity 100)",
        ["quantity", "paper", "measured"],
    )
    t1.add("transactions", 206, len(e31))
    t1.add("s204 assigned-list size", 102, s204.al)
    t1.add("s204 overbooking cost ($)", 1800, app.cost(s204, "overbooking"))
    t1.add("final assigned-list size", 100, final.al)
    t1.add("final list = P2..P100,P102", True,
           final.assigned == tuple(f"P{i}" for i in range(2, 101)) + ("P102",))
    t1.add("P101 waitlisted (unfair)", True, final.waiting == ("P101",))

    e54 = section_5_4_counterexample(capacity=100)
    app54 = make_airline_application(capacity=100)
    t2 = Table(
        "E1b: Section 5.4 centralization counterexample (capacity 100)",
        ["quantity", "paper", "measured"],
    )
    t2.add("transitive", True, is_transitive(e54))
    t2.add("MOVE_UPs centralized", True,
           is_centralized(e54, group_by_family(e54, "MOVE_UP")))
    t2.add("final overbooking cost ($)", 900,
           app54.cost(e54.final_state, "overbooking"))

    e55 = section_5_5_priority_inversion()
    e55ts = section_5_5_with_timestamps()
    t3 = Table(
        "E1c: Section 5.5 priority inversion",
        ["design", "Q ahead of P in final state"],
    )
    t3.add("baseline (paper's definitions)",
           precedes(e55.final_state, "Q", "P"))
    t3.add("timestamped redesign (Section 5.5 fix)",
           ts_precedes(e55ts.final_state, "Q", "P"))

    return (t1, t2, t3), (e31, s204, final, e54, e55, e55ts)


def test_e1_worked_examples(benchmark):
    (tables, artifacts) = run_once(benchmark, _experiment)
    save_tables("E1_worked_examples", tables)
    e31, s204, final, e54, e55, e55ts = artifacts

    app = make_airline_application(capacity=100)
    assert s204.al == 102
    assert app.cost(s204, "overbooking") == 1800
    assert final.assigned == tuple(f"P{i}" for i in range(2, 101)) + ("P102",)
    assert final.waiting == ("P101",)

    assert is_transitive(e54)
    assert app.cost(e54.final_state, "overbooking") == 900

    assert precedes(e55.final_state, "Q", "P")
    assert not ts_precedes(e55ts.final_state, "Q", "P")
